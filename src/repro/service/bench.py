"""Beacon benchmark: warm resident service vs cold one-shot processes, plus
end-to-end service latency/throughput.

Two kinds of rows, matching the repo's perf-harness conventions
(:mod:`benchmarks.perf.harness`):

* **speedup rows** -- per-request latency through a live, warm
  :class:`~repro.service.frontend.BeaconService` (*after*) against the
  workflow the service replaces: a cold one-shot Python process per request
  (*before* -- fresh interpreter, fresh imports, fresh protocol world,
  exactly what ``cold_payload`` computes).  These carry a real ``speedup``
  and are gated by ``check_regression``.  Their ``params`` hold only the
  request shape (not measurement sizes), so quick-mode CI runs gate against
  the checked-in full-mode baseline instead of being skipped.
* **trend rows** -- end-to-end latency through the full sharded service
  under a closed-loop load (pipes, dispatch, backpressure all included).
  No legacy equivalent exists, so ``before_s`` is ``None`` (``speedup:
  null``, reported but never gated); p50/p95/p99 queue latency, shard
  execution p50 and requests/s land in ``params`` for the record.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path
from typing import Any, Dict, List

from benchmarks.perf.harness import BenchResult, compare
from repro.obs.metrics import histogram_quantile
from repro.service.frontend import BeaconService, ServicePolicy
from repro.service.loadgen import build_requests, run_load
from repro.service.requests import BeaconRequest


def _cold_process_env() -> Dict[str, str]:
    """Subprocess environment whose ``PYTHONPATH`` can import ``repro``."""
    import repro

    src = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


def _warm_vs_cold_process(service: BeaconService, protocol: str, n: int,
                          params: Dict[str, Any], seeds: List[int],
                          number: int, repeats: int) -> BenchResult:
    """Warm resident service call vs the cold one-shot process it replaces."""
    env = _cold_process_env()
    cursor = {"index": 0}

    def next_seed() -> int:
        seed = seeds[cursor["index"] % len(seeds)]
        cursor["index"] += 1
        return seed

    def warm() -> None:
        request = BeaconRequest(protocol=protocol, n=n, seed=next_seed(),
                                params=dict(params))
        response = service.call(request, timeout_s=120)
        assert response.ok, response.to_dict()

    def cold() -> None:
        script = (
            "from repro.service.requests import BeaconRequest, cold_payload\n"
            f"cold_payload(BeaconRequest(protocol={protocol!r}, n={n}, "
            f"seed={next_seed()}, params={params!r}))\n"
        )
        subprocess.run(
            [sys.executable, "-c", script],
            check=True,
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    return compare(
        f"beacon_warm_{protocol}_n{n}",
        after=warm,
        before=cold,
        number=number,
        repeats=repeats,
        # Shape only: identical in quick and full mode, so quick CI runs
        # compare against the checked-in full baseline instead of skipping.
        protocol=protocol,
        n=n,
    )


def _service_end_to_end(count: int, n: int, shards: int) -> BenchResult:
    """Drive a request stream through a live service; record the tail.

    The bounded queue keeps the load generator in a closed loop (shed ->
    back off -> resubmit), so latency percentiles reflect a bounded number
    of requests in flight rather than one giant initial burst.
    """
    policy = ServicePolicy(shards=shards, queue_depth=8,
                           shed_retry_after_s=0.005)
    with BeaconService(policy) as service:
        report = run_load(
            service,
            build_requests(count, n=n, seed_base=42_000),
            verify=False,
        )
        latency = service.metrics.histogram("service.latency_ms").to_dict()
        exec_hist = service.metrics.histogram("service.exec_ms").to_dict()
    result = BenchResult(
        name=f"beacon_service_n{n}",
        after_s=(report.elapsed_s / report.ok) if report.ok else float("inf"),
        before_s=None,
        params={
            "n": n,
            "shards": shards,
            "requests": count,
            "ok": report.ok,
            "p50_ms": histogram_quantile(latency, 0.50),
            "p95_ms": histogram_quantile(latency, 0.95),
            "p99_ms": histogram_quantile(latency, 0.99),
            "exec_p50_ms": histogram_quantile(exec_hist, 0.50),
            "requests_per_s": (
                round(report.requests_per_s, 2)
                if report.requests_per_s is not None else None
            ),
            "warm_hits": report.warm_hits,
        },
    )
    per_call = result.after_s * 1e6
    print(f"  {result.name:<28} after={per_call:9.1f}us  (trend only)")
    return result


def run(quick: bool) -> List[BenchResult]:
    """Run the beacon family; returns rows for ``run_and_write``."""
    number = 3 if quick else 6
    repeats = 2
    seeds = list(range(7_000, 7_000 + 64))
    with BeaconService(ServicePolicy(shards=2)) as service:
        results = [
            _warm_vs_cold_process(service, "weak_coin", 4, {}, seeds,
                                  number, repeats),
            _warm_vs_cold_process(service, "coinflip", 16, {"rounds": 2},
                                  seeds, number, repeats),
        ]
    results.append(
        _service_end_to_end(count=24 if quick else 96, n=4, shards=2)
    )
    return results
