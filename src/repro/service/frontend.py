"""Beacon front-end: dispatch, retries, health checks, backpressure.

:class:`BeaconService` owns a pool of resident shard processes
(:mod:`repro.service.shard`) and a single-threaded event loop in the style of
:class:`~repro.experiments.supervisor.WorkerSupervisor` -- pipes plus
:func:`multiprocessing.connection.wait` -- extended with everything a
*long-lived* service needs that a run-to-completion campaign does not:

* **routing**: requests land on a shard chosen by
  :meth:`~repro.service.requests.BeaconRequest.shard_slot`, a stable content
  hash of (protocol, n, prime), so same-shaped traffic reuses one shard's
  warm executors;
* **deadlines and retries**: a request past ``request_timeout_s`` gets its
  shard SIGKILLed and replaced and is re-dispatched up to ``max_retries``
  times after the shared deterministic backoff
  (:func:`~repro.experiments.backoff.backoff_delay`);
* **health checks**: idle shards are pinged every ``heartbeat_interval_s``;
  a shard that misses ``heartbeat_timeout_s`` (or whose pipe reports EOF) is
  killed and replaced.  Warm state is a cache, so a replacement shard is
  merely cold, never wrong;
* **backpressure**: each shard's queue is bounded by ``queue_depth``;
  :meth:`submit` answers an over-full queue with a structured ``"shed"``
  response carrying ``retry_after_s`` instead of queueing unboundedly;
* **graceful shutdown**: :meth:`stop` drains in-flight work (bounded by
  ``drain_timeout_s``), asks shards to exit, then kills stragglers -- no
  leaked processes, and anything still unfinished surfaces as a structured
  ``"shutdown"`` error response.

Failure handling never changes *what* a request computes: trials are seeded
explicitly and warm caches are pure, so a response that survived three shard
deaths is byte-identical to a cold one-shot run (asserted end-to-end by
``tests/service`` and the ``beacon-smoke`` CI job).

All counters and latency histograms live on a
:class:`~repro.obs.metrics.MetricsRegistry` under ``service.*`` and are
exported by :meth:`metrics_dump` (schema checked by
:func:`repro.obs.schema.validate_service_metrics`).
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import multiprocessing.connection
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ServiceError
from repro.experiments.backoff import DEFAULT_BACKOFF_BASE_S, backoff_delay
from repro.obs.metrics import MetricsRegistry, summarize_histogram
from repro.service.requests import ERROR, OK, SHED, BeaconRequest, BeaconResponse

#: Event-loop poll tick when no deadline/heartbeat/retry is nearer (seconds).
_POLL_INTERVAL_S = 0.25
#: Grace given to a killed shard's ``join`` before it is abandoned.
_JOIN_GRACE_S = 5.0
#: Latency histogram bucket bounds (milliseconds).
LATENCY_BUCKETS_MS: Tuple[int, ...] = (1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500)

#: Schema tag stamped on every metrics dump.
METRICS_SCHEMA = "repro.service.metrics/v1"


def _service_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits ``sys.path``); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class ServicePolicy:
    """Robustness knobs for one :class:`BeaconService`.

    Every knob is data, so a policy can be logged, diffed and reproduced.
    ``request_timeout_s`` is the per-dispatch deadline (None disables the
    sweep); ``max_retries`` bounds *re*-dispatches, so a request runs at most
    ``max_retries + 1`` times.
    """

    shards: int = 2
    queue_depth: int = 16
    request_timeout_s: Optional[float] = None
    max_retries: int = 2
    backoff_base_s: float = DEFAULT_BACKOFF_BASE_S
    heartbeat_interval_s: float = 2.0
    heartbeat_timeout_s: float = 5.0
    drain_timeout_s: float = 30.0
    shed_retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ServiceError(f"policy needs >= 1 shard, got {self.shards}")
        if self.queue_depth < 1:
            raise ServiceError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {self.max_retries}")


@dataclass
class _Pending:
    """One accepted request plus its service-side bookkeeping."""

    request: BeaconRequest
    accepted_at: float
    slot: int


class _Shard:
    """One resident shard process: pipe, queue, in-flight state, heartbeat."""

    __slots__ = (
        "slot", "process", "conn", "queue", "inflight", "deadline",
        "ping_token", "ping_sent_at", "last_seen",
    )

    def __init__(self, slot: int, context: multiprocessing.context.BaseContext) -> None:
        from repro.service.shard import shard_main

        parent_conn, child_conn = multiprocessing.Pipe()
        self.process = context.Process(
            target=shard_main, args=(child_conn, slot), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.slot = slot
        self.conn = parent_conn
        self.queue: List[_Pending] = []
        self.inflight: Optional[_Pending] = None
        self.deadline: Optional[float] = None
        self.ping_token: Optional[int] = None
        self.ping_sent_at: Optional[float] = None
        self.last_seen = time.monotonic()

    @property
    def busy(self) -> bool:
        return self.inflight is not None

    def dispatch(self, pending: _Pending, timeout_s: Optional[float]) -> None:
        self.inflight = pending
        self.deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        self.conn.send(("request", pending.request.to_dict()))

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass
        self.process.join(timeout=_JOIN_GRACE_S)
        try:
            self.conn.close()
        except OSError:
            pass


class BeaconService:
    """Long-lived sharded front-end for deterministic beacon requests.

    Single-threaded: callers drive the event loop through :meth:`poll` /
    :meth:`run_until_idle` / :meth:`call`.  Usable as a context manager
    (``with BeaconService(...) as svc``) -- exit stops with drain.
    """

    def __init__(
        self,
        policy: Optional[ServicePolicy] = None,
        metrics: Optional[MetricsRegistry] = None,
        context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        self.policy = policy if policy is not None else ServicePolicy()
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            queue_depth_every=0, completion_steps=False
        )
        self.context = context if context is not None else _service_context()
        self._shards: List[Optional[_Shard]] = [None] * self.policy.shards
        self._delayed: List[Tuple[float, int, _Pending]] = []  # retry heap
        self._responses: Dict[str, BeaconResponse] = {}
        self._tickets = itertools.count()
        self._started = False
        self._closed = False
        self._started_at: Optional[float] = None
        # Pre-create the headline histograms so empty dumps still carry them.
        self.metrics.histogram("service.latency_ms", LATENCY_BUCKETS_MS)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BeaconService":
        if self._closed:
            raise ServiceError("service is stopped; build a new one")
        if not self._started:
            self._started = True
            self._started_at = time.monotonic()
            for slot in range(self.policy.shards):
                self._shards[slot] = _Shard(slot, self.context)
        return self

    def __enter__(self) -> "BeaconService":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop(drain=exc_type is None)

    # ------------------------------------------------------------------
    # Metrics helpers
    # ------------------------------------------------------------------
    def _inc(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # Shard pool management
    # ------------------------------------------------------------------
    def _replace_shard(self, shard: _Shard) -> _Shard:
        """Kill ``shard`` and boot a cold replacement on the same slot.

        The replacement rebuilds warm state lazily, on first request -- warm
        executors are a pure cache keyed by request shape, so losing them
        costs latency, never correctness.  Queued (not yet dispatched)
        requests live front-end-side and simply carry over.
        """
        shard.kill()
        self._inc("service.shard_restarts")
        fresh = _Shard(shard.slot, self.context)
        fresh.queue = shard.queue
        self._shards[shard.slot] = fresh
        return fresh

    def _live_shards(self) -> List[_Shard]:
        return [shard for shard in self._shards if shard is not None]

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: BeaconRequest) -> Optional[BeaconResponse]:
        """Accept ``request`` for execution, or shed it immediately.

        Returns ``None`` when accepted (the response arrives via
        :meth:`poll` / :meth:`take_response`) or a ``"shed"``
        :class:`BeaconResponse` when the target shard's queue is full --
        the caller should back off ``retry_after_s`` and resubmit.
        Malformed requests raise :class:`~repro.errors.ServiceError`.
        """
        if not self._started or self._closed:
            raise ServiceError("service is not running (call start())")
        request.validate()
        self._inc("service.requests")
        slot = request.shard_slot(self.policy.shards)
        shard = self._shards[slot]
        assert shard is not None
        depth = len(shard.queue) + (1 if shard.busy else 0)
        if depth >= self.policy.queue_depth:
            self._inc("service.shed")
            return BeaconResponse(
                request_id=request.request_id,
                status=SHED,
                shard=slot,
                retry_after_s=self.policy.shed_retry_after_s,
            )
        shard.queue.append(_Pending(request, time.monotonic(), slot))
        return None

    # ------------------------------------------------------------------
    # Completion plumbing
    # ------------------------------------------------------------------
    def _finish_ok(self, pending: _Pending, payload: Dict[str, Any],
                   warm: bool, shard: _Shard, exec_ms: float) -> None:
        elapsed_ms = (time.monotonic() - pending.accepted_at) * 1000.0
        self._inc("service.ok")
        if warm:
            self._inc("service.warm_hits")
        # latency_ms is acceptance-to-answer (queueing, retries and all);
        # exec_ms is the shard-measured pure execution time of the final,
        # successful attempt.  The gap between the two is the queue.
        self.metrics.histogram("service.latency_ms", LATENCY_BUCKETS_MS).observe(
            elapsed_ms
        )
        self.metrics.histogram("service.exec_ms", LATENCY_BUCKETS_MS).observe(
            exec_ms
        )
        steps = payload.get("steps")
        if isinstance(steps, int):
            self.metrics.histogram("service.steps").observe(steps)
        self._responses[pending.request.request_id] = BeaconResponse(
            request_id=pending.request.request_id,
            status=OK,
            payload=payload,
            shard=shard.slot,
            attempts=pending.request.attempt + 1,
            warm=warm,
            elapsed_ms=round(elapsed_ms, 3),
        )

    def _finish_error(self, pending: _Pending, kind: str, error: str,
                      message: str) -> None:
        self._inc("service.errors")
        self._responses[pending.request.request_id] = BeaconResponse(
            request_id=pending.request.request_id,
            status=ERROR,
            error=kind,
            message=f"{error}: {message}" if error else message,
            shard=pending.slot,
            attempts=pending.request.attempt + 1,
            elapsed_ms=round((time.monotonic() - pending.accepted_at) * 1000.0, 3),
        )

    def _handle_failure(self, pending: _Pending, kind: str, error: str,
                        message: str) -> None:
        """Retry with deterministic backoff, or emit the terminal error."""
        request = pending.request
        if request.attempt < self.policy.max_retries:
            self._inc("service.retries")
            request.attempt += 1
            ready_at = time.monotonic() + backoff_delay(
                request.attempt, self.policy.backoff_base_s
            )
            heapq.heappush(self._delayed, (ready_at, next(self._tickets), pending))
        else:
            self._finish_error(pending, kind, error, message)

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def poll(self, timeout_s: float = _POLL_INTERVAL_S) -> int:
        """Run one event-loop cycle; returns the number of responses ready.

        One cycle: promote due retries, dispatch idle shards, wait (up to
        ``timeout_s``, shortened to the nearest deadline / heartbeat /
        retry), consume shard replies, sweep deadlines, ping idle shards.
        """
        if not self._started:
            raise ServiceError("service is not running (call start())")
        now = time.monotonic()

        # Promote due retries back onto their shard queues (front: a retried
        # request is older than anything queued behind it).
        while self._delayed and self._delayed[0][0] <= now:
            pending = heapq.heappop(self._delayed)[2]
            shard = self._shards[pending.slot]
            assert shard is not None
            shard.queue.insert(0, pending)

        # Dispatch.
        for shard in self._live_shards():
            while shard.queue and not shard.busy:
                pending = shard.queue.pop(0)
                try:
                    shard.dispatch(pending, self.policy.request_timeout_s)
                except (BrokenPipeError, OSError):
                    # Shard died while idle; replace and redispatch (the
                    # request has not been attempted, so no attempt burns).
                    shard.inflight = None
                    shard.deadline = None
                    replacement = self._replace_shard(shard)
                    replacement.queue.insert(0, pending)
                    shard = replacement

        # Wait for replies, waking for the nearest deadline/heartbeat/retry.
        wait_s = max(0.0, timeout_s)
        now = time.monotonic()
        conns = []
        for shard in self._live_shards():
            conns.append(shard.conn)
            if shard.deadline is not None:
                wait_s = min(wait_s, shard.deadline - now)
            if shard.ping_sent_at is not None:
                wait_s = min(
                    wait_s,
                    shard.ping_sent_at + self.policy.heartbeat_timeout_s - now,
                )
        if self._delayed:
            wait_s = min(wait_s, self._delayed[0][0] - now)
        ready = multiprocessing.connection.wait(conns, timeout=max(0.0, wait_s))

        by_conn = {shard.conn: shard for shard in self._live_shards()}
        for conn in ready:
            shard = by_conn[conn]
            try:
                message = conn.recv()
            except (EOFError, OSError):
                # Shard death: SIGKILL, os._exit, segfault, injected chaos.
                pending = shard.inflight
                shard.inflight = None
                shard.deadline = None
                self._replace_shard(shard)
                if pending is not None:
                    self._handle_failure(
                        pending,
                        "shard-death",
                        "ShardDied",
                        f"shard {shard.slot} died (exitcode "
                        f"{shard.process.exitcode}) while running "
                        f"{pending.request.request_id}",
                    )
                continue
            shard.last_seen = time.monotonic()
            kind = message[0]
            if kind == "pong":
                if message[1] == shard.ping_token:
                    shard.ping_token = None
                    shard.ping_sent_at = None
            elif kind == "ok":
                pending = shard.inflight
                shard.inflight = None
                shard.deadline = None
                if pending is not None and pending.request.request_id == message[1]:
                    _, _, payload, warm, shard_ms = message
                    self._finish_ok(pending, payload, warm, shard, shard_ms)
            elif kind == "error":
                pending = shard.inflight
                shard.inflight = None
                shard.deadline = None
                if pending is not None and pending.request.request_id == message[1]:
                    _, _, error, detail, _tb = message
                    self._handle_failure(pending, "exception", error, detail)
            # "stats" replies are consumed by shard_stats(); anything else
            # from a confused shard is ignored rather than trusted.

        # Deadline sweep: a shard past its request deadline is hung (or far
        # too slow) -- SIGKILL it, replace it, and retry the request.
        now = time.monotonic()
        for shard in list(self._live_shards()):
            if shard.busy and shard.deadline is not None and now > shard.deadline:
                pending = shard.inflight
                shard.inflight = None
                shard.deadline = None
                self._inc("service.timeouts")
                self._replace_shard(shard)
                self._handle_failure(
                    pending,
                    "timeout",
                    "RequestTimeout",
                    f"request {pending.request.request_id} exceeded its "
                    f"{self.policy.request_timeout_s:.3f}s deadline on shard "
                    f"{shard.slot}",
                )

        # Heartbeats: ping idle shards, replace the unresponsive.
        now = time.monotonic()
        for shard in list(self._live_shards()):
            if shard.busy:
                continue
            if shard.ping_sent_at is not None:
                if now - shard.ping_sent_at > self.policy.heartbeat_timeout_s:
                    self._inc("service.heartbeat_failures")
                    self._replace_shard(shard)
                continue
            if now - shard.last_seen >= self.policy.heartbeat_interval_s:
                token = next(self._tickets)
                try:
                    shard.conn.send(("ping", token))
                except (BrokenPipeError, OSError):
                    self._inc("service.heartbeat_failures")
                    self._replace_shard(shard)
                    continue
                shard.ping_token = token
                shard.ping_sent_at = now

        return len(self._responses)

    # ------------------------------------------------------------------
    # Client conveniences
    # ------------------------------------------------------------------
    def take_response(self, request_id: str) -> Optional[BeaconResponse]:
        """Pop the response for ``request_id`` if it has arrived."""
        return self._responses.pop(request_id, None)

    @property
    def pending_count(self) -> int:
        """Requests accepted but not yet answered (queued/in-flight/retrying)."""
        queued = sum(
            len(shard.queue) + (1 if shard.busy else 0)
            for shard in self._live_shards()
        )
        return queued + len(self._delayed)

    def run_until_idle(self, timeout_s: Optional[float] = None) -> None:
        """Drive the loop until every accepted request has a response."""
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        while self.pending_count:
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"run_until_idle timed out with {self.pending_count} "
                    f"requests outstanding"
                )
            self.poll()

    def call(self, request: BeaconRequest,
             timeout_s: Optional[float] = None) -> BeaconResponse:
        """Submit one request and drive the loop until its response arrives.

        A shed submission is returned as-is (the caller owns backoff) and a
        ``timeout_s`` overrun raises :class:`~repro.errors.ServiceError`.
        """
        shed = self.submit(request)
        if shed is not None:
            return shed
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        while True:
            response = self.take_response(request.request_id)
            if response is not None:
                return response
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"no response for {request.request_id} within {timeout_s}s"
                )
            self.poll()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def shard_stats(self, timeout_s: float = 5.0) -> List[Dict[str, Any]]:
        """Round-trip ``stats`` probes to every idle live shard."""
        stats: List[Dict[str, Any]] = []
        for shard in self._live_shards():
            if shard.busy:
                stats.append({"shard": shard.slot, "busy": True})
                continue
            token = next(self._tickets)
            try:
                shard.conn.send(("stats", token))
            except (BrokenPipeError, OSError):
                continue
            deadline = time.monotonic() + timeout_s
            while time.monotonic() < deadline:
                if not shard.conn.poll(timeout=0.05):
                    continue
                try:
                    message = shard.conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "stats" and message[1] == token:
                    stats.append(message[2])
                    break
                if message[0] == "pong":
                    shard.ping_token = None
                    shard.ping_sent_at = None
        return stats

    def metrics_dump(self) -> Dict[str, Any]:
        """JSON-shaped service metrics (schema ``repro.service.metrics/v1``)."""
        counters = self.metrics.counter_values()
        latency = self.metrics.histogram(
            "service.latency_ms", LATENCY_BUCKETS_MS
        ).to_dict()
        exec_hist = self.metrics.histogram(
            "service.exec_ms", LATENCY_BUCKETS_MS
        ).to_dict()
        dump: Dict[str, Any] = {
            "schema": METRICS_SCHEMA,
            "policy": {
                "shards": self.policy.shards,
                "queue_depth": self.policy.queue_depth,
                "request_timeout_s": self.policy.request_timeout_s,
                "max_retries": self.policy.max_retries,
            },
            "counters": {
                name: counters.get(name, 0)
                for name in (
                    "service.requests", "service.ok", "service.errors",
                    "service.shed", "service.retries", "service.timeouts",
                    "service.shard_restarts", "service.heartbeat_failures",
                    "service.warm_hits",
                )
            },
            "latency_ms": {**latency, "summary": summarize_histogram(latency)},
            "exec_ms": {**exec_hist, "summary": summarize_histogram(exec_hist)},
            "pending": self.pending_count,
        }
        if self._started_at is not None:
            uptime = time.monotonic() - self._started_at
            dump["uptime_s"] = round(uptime, 3)
            ok = counters.get("service.ok", 0)
            dump["requests_per_s"] = round(ok / uptime, 3) if uptime > 0 else None
        return dump

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self, drain: bool = True) -> None:
        """Stop the service; with ``drain``, finish in-flight work first.

        Draining is bounded by ``policy.drain_timeout_s``.  Whatever is
        still unanswered afterwards (or when ``drain=False``) becomes a
        structured ``"shutdown"`` error response -- a stopped service never
        silently swallows an accepted request.  No shard process survives
        this call.
        """
        if self._closed or not self._started:
            self._closed = True
            return
        self._closed = True
        try:
            if drain:
                deadline = time.monotonic() + self.policy.drain_timeout_s
                while self.pending_count and time.monotonic() < deadline:
                    self.poll()
            # Surface anything still outstanding as structured errors.
            leftovers: List[_Pending] = []
            for shard in self._live_shards():
                leftovers.extend(shard.queue)
                shard.queue = []
                if shard.inflight is not None:
                    leftovers.append(shard.inflight)
                    shard.inflight = None
            leftovers.extend(entry[2] for entry in self._delayed)
            self._delayed = []
            for pending in leftovers:
                self._finish_error(
                    pending, "shutdown", "ServiceStopped",
                    "service stopped before the request completed",
                )
        finally:
            # Graceful exit for responsive shards, SIGKILL for the rest.
            shards = self._live_shards()
            for shard in shards:
                try:
                    shard.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + 1.0
            for shard in shards:
                shard.process.join(timeout=max(0.0, deadline - time.monotonic()))
            for shard in shards:
                if shard.process.is_alive():
                    shard.kill()
                try:
                    shard.conn.close()
                except OSError:
                    pass
            self._shards = [None] * self.policy.shards
