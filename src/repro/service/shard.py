"""Resident shard worker: warm executors behind a pipe.

Each shard is a long-lived ``multiprocessing.Process`` holding a cache of
:class:`~repro.experiments.runner.CellExecutor` instances keyed by the
request's :meth:`~repro.service.requests.BeaconRequest.warm_key` -- the
per-(prime, n) evaluation plans, behaviour factories and interned session
tables built once and reused for every subsequent request of the same shape.
Request N+1 skips world-building entirely; only the seeded trial runs.

The shard speaks a small tagged-tuple protocol over its pipe:

* ``("request", dict)``   -> ``("ok", rid, payload, warm, elapsed_ms)`` or
  ``("error", rid, error, message, traceback)``
* ``("ping", token)``     -> ``("pong", token)`` -- heartbeat liveness probe
* ``("stats", token)``    -> ``("stats", token, dict)`` -- cache/serve counters
* ``None``                -> clean exit

Chaos faults ride inside the request (``fault`` field) and fire *before* the
trial, exactly like the campaign plane's chunk hook -- an injected SIGKILL or
hang takes the shard down mid-request and exercises the front-end's
replace-and-retry machinery, never the result.  Crash isolation mirrors
:func:`repro.experiments.supervisor._worker_main`: every ``BaseException``
becomes a structured error reply; only a broken pipe or ``KeyboardInterrupt``
ends the loop silently.
"""

from __future__ import annotations

import multiprocessing.connection
import time
import traceback
from typing import Any, Dict, Tuple

from repro.service.requests import BeaconRequest, canonical_payload


class ShardState:
    """Warm-executor cache plus serve counters for one shard process."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.executors: Dict[str, Any] = {}
        self.served = 0
        self.warm_hits = 0

    def execute(self, request: BeaconRequest) -> Tuple[Dict[str, Any], bool]:
        """Run one request, reusing (or building) its warm executor."""
        # Imported lazily, like the supervisor's worker body: the runner pulls
        # in the whole protocol stack and must not load at service-import time.
        from repro.experiments.registry import inject_fault
        from repro.experiments.runner import CellExecutor

        inject_fault(request.fault, 0, request.attempt)
        key = request.warm_key()
        executor = self.executors.get(key)
        warm = executor is not None
        if executor is None:
            executor = CellExecutor(request.cell())
            self.executors[key] = executor
        result = executor.run(request.seed)
        self.served += 1
        if warm:
            self.warm_hits += 1
        return canonical_payload(result), warm

    def stats(self) -> Dict[str, Any]:
        return {
            "shard": self.shard_id,
            "served": self.served,
            "warm_hits": self.warm_hits,
            "executors": len(self.executors),
        }


def shard_main(conn: multiprocessing.connection.Connection, shard_id: int) -> None:
    """Shard process entrypoint: serve requests until told to stop."""
    state = ShardState(shard_id)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if message is None:
            conn.close()
            return
        kind = message[0]
        if kind == "ping":
            reply: Tuple[Any, ...] = ("pong", message[1])
        elif kind == "stats":
            reply = ("stats", message[1], state.stats())
        elif kind == "request":
            request = BeaconRequest.from_dict(message[1])
            started = time.monotonic()
            try:
                payload, warm = state.execute(request)
            except KeyboardInterrupt:
                return
            except BaseException as exc:  # noqa: BLE001 -- crash isolation
                reply = (
                    "error",
                    request.request_id,
                    type(exc).__name__,
                    str(exc),
                    traceback.format_exc(),
                )
            else:
                elapsed_ms = (time.monotonic() - started) * 1000.0
                reply = ("ok", request.request_id, payload, warm, elapsed_ms)
        else:
            reply = ("error", None, "ProtocolError",
                     f"unknown shard message {kind!r}", "")
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return
