"""Exception hierarchy shared across the repro library.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """Raised when protocol parameters are invalid (e.g. ``n < 3t + 1``)."""


class FieldError(ReproError):
    """Raised on invalid finite-field operations (e.g. division by zero)."""


class InterpolationError(ReproError):
    """Raised when polynomial interpolation is impossible or ambiguous."""


class DecodingError(ReproError):
    """Raised when Reed-Solomon decoding cannot correct the received word."""


class ProtocolError(ReproError):
    """Raised when a protocol receives input it can never accept.

    Honest protocol code never raises this for messages sent by faulty
    parties -- those are silently ignored or trigger shunning.  It is raised
    for programming errors such as starting a protocol twice.
    """


class SimulationError(ReproError):
    """Raised by the network runtime (e.g. step budget exhausted)."""


class ServiceError(ReproError):
    """Raised by the beacon service plane (bad request, closed service, ...).

    Service *execution* failures -- a shard dying, a deadline firing -- are
    never raised; they surface as structured error responses so one bad
    request cannot take the resident front-end down.
    """


class SchedulingError(ReproError):
    """Raised when a scheduler returns an invalid choice."""


class ExperimentError(ReproError):
    """Raised for invalid campaign specs, unknown registry names and
    incompatible result stores in :mod:`repro.experiments`."""


class FaultInjectionError(ReproError):
    """Raised by the chaos-injection ``raise`` fault
    (:data:`repro.experiments.registry.FAULTS`).

    A dedicated class so tests and quarantine records can tell an injected
    fault apart from a genuine failure of the code under test."""
