"""Candidate AVSS protocols used by the lower-bound experiments.

Theorem 2.2 says that *no* ``(2/3 + eps)``-correct, almost-surely terminating
AVSS exists for ``n = 4, t = 1``.  To make the attack machinery concrete we
supply small candidate protocols with bounded randomness and show what the
generic attack does to each:

* :func:`masked_xor_avss` -- the textbook "mask the secret additively"
  attempt.  It satisfies Secrecy and Termination, so the Section-2 attacks
  apply -- and indeed the Claim-2 reconstruction attack makes an honest party
  output the wrong value with probability far above ``1/3 - eps``.
* :func:`echo_checked_avss` -- a "fixed" variant in which A and B exchange
  their shares during the share phase so that reconstruction can be
  cross-checked.  The cross-check defeats the reconstruction attack, but the
  exchange leaks the secret to any single corrupted party: the enumeration
  engine shows Secrecy no longer holds, exactly the trade-off the lower bound
  says is unavoidable.

The share encoding: the dealer holds a secret ``s ∈ {0,1}`` and a uniform mask
``r``; party A's share is ``s XOR r``, party B's share is ``r`` and party C's
share is ``s XOR r``.  Any single share is uniform; shares of A (or C)
together with B's share determine the secret.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.lowerbound.transcripts import CandidateAVSS

ShareInbox = Dict[Tuple[int, str], Any]


def _dealer_shares(secret: int, mask: int) -> Dict[str, int]:
    """Per-party share values for the masked-XOR encoding."""
    return {"A": secret ^ mask, "B": mask, "C": secret ^ mask}


def _own_share(party: str, view: ShareInbox) -> Optional[int]:
    """The share ``party`` received from the dealer in round 0, if any."""
    message = view.get((0, "D"))
    if isinstance(message, tuple) and len(message) == 2 and message[0] == "SHARE":
        return int(message[1])
    return None


def _collect_claimed_shares(party: str, view: ShareInbox, rec_view: ShareInbox) -> Dict[str, int]:
    """Shares known to ``party`` after reconstruction messages are delivered."""
    known: Dict[str, int] = {}
    own = _own_share(party, view)
    if own is not None:
        known[party] = own
    for (_round, sender), message in rec_view.items():
        if (
            isinstance(message, tuple)
            and len(message) == 3
            and message[0] == "REC"
            and message[1] in ("A", "B", "C")
        ):
            known.setdefault(message[1], int(message[2]))
    return known


def _xor_reconstruct(known: Dict[str, int]) -> Optional[int]:
    """Combine one A/C share with B's share; None when impossible."""
    if "B" not in known:
        return None
    if "A" in known:
        return known["A"] ^ known["B"]
    if "C" in known:
        return known["C"] ^ known["B"]
    return None


# ----------------------------------------------------------------------
# Candidate 1: masked XOR sharing, no cross-checking.
# ----------------------------------------------------------------------
def _masked_share_messages(
    party: str,
    round_index: int,
    secret: Optional[int],
    randomness: Any,
    view: ShareInbox,
) -> Dict[str, Any]:
    if party == "D" and round_index == 0:
        shares = _dealer_shares(int(secret or 0), int(randomness))
        return {name: ("SHARE", value) for name, value in shares.items()}
    if party in ("A", "B", "C") and round_index == 1:
        if _own_share(party, view) is not None:
            return {other: ("OK",) for other in ("D", "A", "B", "C") if other != party}
    return {}


def _masked_share_complete(party: str, randomness: Any, view: ShareInbox) -> bool:
    if party == "D":
        return any(message == ("OK",) for message in view.values())
    if _own_share(party, view) is None:
        return False
    return any(
        message == ("OK",) and sender != "D"
        for (_round, sender), message in view.items()
    )


def _masked_rec_messages(
    party: str,
    randomness: Any,
    share_view: ShareInbox,
    round_index: int,
    rec_view: ShareInbox,
) -> Dict[str, Any]:
    if round_index != 0:
        return {}
    own = _own_share(party, share_view)
    if own is None:
        return {}
    return {
        other: ("REC", party, own)
        for other in ("A", "B", "C")
        if other != party
    }


def _masked_rec_output(
    party: str,
    randomness: Any,
    share_view: ShareInbox,
    rec_view: ShareInbox,
) -> Optional[int]:
    return _xor_reconstruct(_collect_claimed_shares(party, share_view, rec_view))


def masked_xor_avss() -> CandidateAVSS:
    """The secrecy-preserving candidate attacked by experiments E6a/E6b."""
    return CandidateAVSS(
        name="masked-xor",
        randomness={"D": (0, 1), "A": (None,), "B": (None,), "C": (None,)},
        share_rounds=2,
        rec_rounds=1,
        share_message_fn=_masked_share_messages,
        share_complete_fn=_masked_share_complete,
        rec_message_fn=_masked_rec_messages,
        rec_output_fn=_masked_rec_output,
    )


# ----------------------------------------------------------------------
# Candidate 2: A and B cross-exchange their shares during the share phase.
# ----------------------------------------------------------------------
def _echo_share_messages(
    party: str,
    round_index: int,
    secret: Optional[int],
    randomness: Any,
    view: ShareInbox,
) -> Dict[str, Any]:
    if party == "D" and round_index == 0:
        shares = _dealer_shares(int(secret or 0), int(randomness))
        return {name: ("SHARE", value) for name, value in shares.items()}
    if party in ("A", "B", "C") and round_index == 1:
        own = _own_share(party, view)
        if own is not None:
            sends: Dict[str, Any] = {
                other: ("ECHO", party, own)
                for other in ("A", "B", "C")
                if other != party
            }
            sends["D"] = ("OK",)
            return sends
    return {}


def _echo_share_complete(party: str, randomness: Any, view: ShareInbox) -> bool:
    if party == "D":
        return any(message == ("OK",) for message in view.values())
    if _own_share(party, view) is None:
        return False
    return any(
        isinstance(message, tuple) and message and message[0] == "ECHO"
        for message in view.values()
    )


def _echo_peer_shares(share_view: ShareInbox) -> Dict[str, int]:
    """Shares learned from peers' ECHO messages during the share phase."""
    learned: Dict[str, int] = {}
    for (_round, _sender), message in share_view.items():
        if isinstance(message, tuple) and len(message) == 3 and message[0] == "ECHO":
            learned[message[1]] = int(message[2])
    return learned


def _echo_rec_output(
    party: str,
    randomness: Any,
    share_view: ShareInbox,
    rec_view: ShareInbox,
) -> Optional[int]:
    # Shares recorded during the share phase take precedence over claims made
    # during reconstruction -- this is the "cross-check" that defeats the
    # Claim-2 attack (at the price of Secrecy).
    known = _collect_claimed_shares(party, share_view, rec_view)
    known.update(_echo_peer_shares(share_view))
    own = _own_share(party, share_view)
    if own is not None:
        known[party] = own
    return _xor_reconstruct(known)


def echo_checked_avss() -> CandidateAVSS:
    """The cross-checking candidate: robust reconstruction, broken secrecy."""
    return CandidateAVSS(
        name="echo-checked",
        randomness={"D": (0, 1), "A": (None,), "B": (None,), "C": (None,)},
        share_rounds=2,
        rec_rounds=1,
        share_message_fn=_echo_share_messages,
        share_complete_fn=_echo_share_complete,
        rec_message_fn=_masked_rec_messages,
        rec_output_fn=_echo_rec_output,
    )


def all_candidates() -> Tuple[CandidateAVSS, ...]:
    """Every candidate exercised by the E6 experiment."""
    return (masked_xor_avss(), echo_checked_avss())
