"""Experiment E6: empirical reproduction of the Theorem 2.2 lower bound.

For every candidate AVSS this module checks which of the AVSS properties the
candidate satisfies (Secrecy, share-phase Termination) using exact transcript
enumeration, then runs the two Section-2 attacks and reports their success
statistics.  The theorem predicts that any candidate satisfying Secrecy and
Termination must fail ``(2/3 + eps)``-correctness: an honest party outputs a
wrong value (or no value) with probability above ``1/3 - eps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.lowerbound.attack import DealerSplitAttack, ReconstructionAttack
from repro.lowerbound.toy_avss import all_candidates
from repro.lowerbound.transcripts import CandidateAVSS, ShareEnumerator

#: Correctness threshold of Theorem 2.2: a (2/3 + eps)-correct AVSS may give a
#: wrong output with probability at most 1/3 - eps.
CORRECTNESS_FAILURE_THRESHOLD = 1.0 / 3.0


@dataclass(frozen=True)
class LowerBoundRow:
    """One candidate's row in the E6 table."""

    candidate: str
    secrecy_a: bool
    secrecy_b: bool
    termination_rate: float
    claim1_split_rate_given_guess: float
    claim1_guess_rate: float
    claim2_wrong_output_rate: float
    claim2_no_output_rate: float

    @property
    def secrecy_holds(self) -> bool:
        """True when no single party's view depends on the secret."""
        return self.secrecy_a and self.secrecy_b

    @property
    def correctness_violated(self) -> bool:
        """True when the measured failure rate exceeds the 1/3 threshold."""
        failure = self.claim2_wrong_output_rate + self.claim2_no_output_rate
        return failure > CORRECTNESS_FAILURE_THRESHOLD

    @property
    def consistent_with_theorem(self) -> bool:
        """Theorem 2.2: Secrecy + Termination implies a correctness violation."""
        if self.secrecy_holds and self.termination_rate > 0.99:
            return self.correctness_violated
        return True


def evaluate_candidate(
    candidate: CandidateAVSS,
    trials: int = 400,
    seed: int = 0,
) -> LowerBoundRow:
    """Run the property checks and both attacks against one candidate."""
    enumerator = ShareEnumerator(candidate, active=("D", "A", "B"))
    dealer_attack = DealerSplitAttack(candidate)
    rec_attack = ReconstructionAttack(candidate)
    claim1 = dealer_attack.success_statistics(trials, seed=seed)
    claim2 = rec_attack.success_statistics(trials, seed=seed + 1)
    return LowerBoundRow(
        candidate=candidate.name,
        secrecy_a=enumerator.secrecy_holds("A"),
        secrecy_b=enumerator.secrecy_holds("B"),
        termination_rate=enumerator.termination_rate(0),
        claim1_split_rate_given_guess=claim1["split_rate_given_guess"],
        claim1_guess_rate=claim1["guess_rate"],
        claim2_wrong_output_rate=claim2["a_wrong_output_rate"],
        claim2_no_output_rate=claim2["a_no_output_rate"],
    )


def run_experiment(trials: int = 400, seed: int = 0) -> Dict[str, LowerBoundRow]:
    """Evaluate every built-in candidate; returns rows keyed by candidate name."""
    rows = {}
    for candidate in all_candidates():
        rows[candidate.name] = evaluate_candidate(candidate, trials=trials, seed=seed)
    return rows


def format_report(rows: Sequence[LowerBoundRow]) -> str:
    """Human-readable report used by the example script and the benchmark."""
    lines = [
        "Lower-bound reproduction (Theorem 2.2, n=4, t=1)",
        "",
        f"{'candidate':<14}{'secrecy':<9}{'term.':<7}"
        f"{'claim1 split|guess':<20}{'claim2 wrong':<14}{'violates 2/3-corr.':<18}",
    ]
    for row in rows:
        lines.append(
            f"{row.candidate:<14}"
            f"{str(row.secrecy_holds):<9}"
            f"{row.termination_rate:<7.2f}"
            f"{row.claim1_split_rate_given_guess:<20.2f}"
            f"{row.claim2_wrong_output_rate:<14.2f}"
            f"{str(row.correctness_violated):<18}"
        )
    lines.append("")
    lines.append(
        "Theorem check: every candidate with secrecy and termination violates "
        "(2/3+eps)-correctness: "
        + str(all(row.consistent_with_theorem for row in rows))
    )
    return "\n".join(lines)
