"""Transcript enumeration for the Section-2 lower bound.

The lower-bound adversary of Theorem 2.2 is information-theoretic: to mount
the Claim-1 attack the faulty dealer samples from *conditional distributions
of protocol transcripts* (for example "A's randomness given that the dealer
shared 0 and the run stayed short"), and the Claim-2 attacker re-samples a
fake view consistent with the messages it actually exchanged.

For a candidate AVSS whose per-round randomness is drawn from small finite
domains, those distributions are exactly computable by enumerating every
synchronous run.  This module provides

* :class:`CandidateAVSS` -- a declarative description of a candidate 4-party
  AVSS (share/reconstruct message functions, completion and output rules),
* :class:`Transcript` -- one fully-determined synchronous run,
* :class:`ShareEnumerator` -- enumerates all share-phase runs for a given
  secret and active-party set, and computes marginal / conditional
  distributions over any transcript feature,
* :class:`ScriptedShareRunner` -- replays the share phase with one party's
  messages scripted by the adversary (used to *execute* the Claim-1 attack),
* :class:`ReconstructionRunner` -- runs the reconstruction phase from given
  (possibly fabricated) share views.

Parties are named ``"D"`` (the dealer), ``"A"``, ``"B"`` and ``"C"``,
matching the paper's proof.
"""

from __future__ import annotations

import itertools
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

PARTIES: Tuple[str, ...] = ("D", "A", "B", "C")

#: A party's view of the share phase: its randomness plus every message it
#: received, as a sorted tuple of ``(round, sender, message)``.
ShareView = Tuple[Any, Tuple[Tuple[int, str, Any], ...]]

#: ``message_fn(party, round, secret, randomness, view_so_far) -> {receiver: message}``
MessageFn = Callable[[str, int, Optional[int], Any, Dict[Tuple[int, str], Any]], Dict[str, Any]]
#: ``complete_fn(party, randomness, view) -> bool``
CompleteFn = Callable[[str, Any, Dict[Tuple[int, str], Any]], bool]
#: ``rec_message_fn(party, randomness, share_view, round, rec_view) -> {receiver: message}``
RecMessageFn = Callable[[str, Any, Dict[Tuple[int, str], Any], int, Dict[Tuple[int, str], Any]], Dict[str, Any]]
#: ``rec_output_fn(party, randomness, share_view, rec_view) -> Optional[int]``
RecOutputFn = Callable[[str, Any, Dict[Tuple[int, str], Any], Dict[Tuple[int, str], Any]], Optional[int]]


@dataclass(frozen=True)
class CandidateAVSS:
    """A declarative candidate AVSS for four parties with a binary secret.

    Attributes:
        name: human-readable candidate name.
        randomness: per-party list of possible random values (use ``[None]``
            for deterministic parties).
        share_rounds: number of synchronous share-phase rounds.
        rec_rounds: number of synchronous reconstruction-phase rounds.
        share_message_fn: share-phase message function.
        share_complete_fn: share-phase completion predicate.
        rec_message_fn: reconstruction-phase message function.
        rec_output_fn: reconstruction output function (None = no output yet).
    """

    name: str
    randomness: Mapping[str, Sequence[Any]]
    share_rounds: int
    rec_rounds: int
    share_message_fn: MessageFn
    share_complete_fn: CompleteFn
    rec_message_fn: RecMessageFn
    rec_output_fn: RecOutputFn


@dataclass(frozen=True)
class Transcript:
    """One fully-determined synchronous share-phase run."""

    secret: int
    randomness: Tuple[Tuple[str, Any], ...]
    #: ``(round, sender, receiver) -> message``
    messages: Tuple[Tuple[Tuple[int, str, str], Any], ...]
    completed: FrozenSet[str]
    probability: float

    # ------------------------------------------------------------------
    def randomness_of(self, party: str) -> Any:
        """The random value ``party`` used in this run."""
        return dict(self.randomness)[party]

    def messages_between(self, x: str, y: str) -> Tuple[Tuple[int, str, str, Any], ...]:
        """All messages exchanged (in both directions) between ``x`` and ``y``."""
        items = []
        for (round_index, sender, receiver), message in self.messages:
            if {sender, receiver} == {x, y}:
                items.append((round_index, sender, receiver, message))
        return tuple(sorted(items))

    def messages_to(self, receiver: str) -> Dict[Tuple[int, str], Any]:
        """Messages received by ``receiver`` keyed by ``(round, sender)``."""
        inbox: Dict[Tuple[int, str], Any] = {}
        for (round_index, sender, rcv), message in self.messages:
            if rcv == receiver:
                inbox[(round_index, sender)] = message
        return inbox

    def view(self, party: str) -> ShareView:
        """The party's full share-phase view (randomness + inbox)."""
        inbox = self.messages_to(party)
        return (
            self.randomness_of(party),
            tuple(sorted((r, s, m) for (r, s), m in inbox.items())),
        )


def _run_share_phase(
    candidate: CandidateAVSS,
    secret: int,
    randomness: Dict[str, Any],
    active: Sequence[str],
    script: Optional[Mapping[Tuple[int, str, str], Any]] = None,
    scripted_party: Optional[str] = None,
) -> Tuple[Dict[Tuple[int, str, str], Any], Dict[str, Dict[Tuple[int, str], Any]]]:
    """Execute the share phase synchronously.

    Returns the message log and every party's inbox.  When ``scripted_party``
    is given, its outgoing messages are taken from ``script`` (missing entries
    mean "no message") instead of the candidate's message function.
    """
    inboxes: Dict[str, Dict[Tuple[int, str], Any]] = {p: {} for p in PARTIES}
    log: Dict[Tuple[int, str, str], Any] = {}
    for round_index in range(candidate.share_rounds):
        outgoing: Dict[Tuple[str, str], Any] = {}
        for sender in active:
            if sender == scripted_party:
                assert script is not None
                for receiver in PARTIES:
                    key = (round_index, sender, receiver)
                    if key in script:
                        outgoing[(sender, receiver)] = script[key]
                continue
            sends = candidate.share_message_fn(
                sender,
                round_index,
                secret if sender == "D" else None,
                randomness[sender],
                dict(inboxes[sender]),
            )
            for receiver, message in sends.items():
                outgoing[(sender, receiver)] = message
        for (sender, receiver), message in outgoing.items():
            log[(round_index, sender, receiver)] = message
            if receiver in active or receiver in PARTIES:
                inboxes[receiver][(round_index, sender)] = message
    return log, inboxes


class ShareEnumerator:
    """Enumerates every share-phase run for one secret and active-party set."""

    def __init__(
        self,
        candidate: CandidateAVSS,
        active: Sequence[str] = ("D", "A", "B"),
    ) -> None:
        self.candidate = candidate
        self.active = tuple(active)
        self._cache: Dict[int, List[Transcript]] = {}

    # ------------------------------------------------------------------
    def transcripts(self, secret: int) -> List[Transcript]:
        """All runs with the dealer sharing ``secret`` (uniform randomness)."""
        if secret in self._cache:
            return self._cache[secret]
        domains = [list(self.candidate.randomness.get(p, [None])) for p in self.active]
        total = 1
        for domain in domains:
            total *= len(domain)
        runs: List[Transcript] = []
        for assignment in itertools.product(*domains):
            randomness = {p: None for p in PARTIES}
            randomness.update(dict(zip(self.active, assignment)))
            log, inboxes = _run_share_phase(
                self.candidate, secret, randomness, self.active
            )
            completed = frozenset(
                party
                for party in self.active
                if self.candidate.share_complete_fn(
                    party, randomness[party], dict(inboxes[party])
                )
            )
            runs.append(
                Transcript(
                    secret=secret,
                    randomness=tuple(sorted(randomness.items())),
                    messages=tuple(sorted(log.items())),
                    completed=completed,
                    probability=1.0 / total,
                )
            )
        self._cache[secret] = runs
        return runs

    # ------------------------------------------------------------------
    def distribution(
        self,
        secret: int,
        feature: Callable[[Transcript], Any],
        condition: Optional[Callable[[Transcript], bool]] = None,
    ) -> Counter:
        """Probability distribution of ``feature`` conditioned on ``condition``."""
        weights: Counter = Counter()
        total = 0.0
        for transcript in self.transcripts(secret):
            if condition is not None and not condition(transcript):
                continue
            weights[feature(transcript)] += transcript.probability
            total += transcript.probability
        if total <= 0:
            return Counter()
        return Counter({value: weight / total for value, weight in weights.items()})

    def sample(
        self,
        rng: random.Random,
        secret: int,
        feature: Callable[[Transcript], Any],
        condition: Optional[Callable[[Transcript], bool]] = None,
    ) -> Any:
        """Sample a value of ``feature`` from its conditional distribution."""
        distribution = self.distribution(secret, feature, condition)
        if not distribution:
            raise ValueError("conditional distribution is empty")
        values = list(distribution)
        weights = [distribution[v] for v in values]
        return rng.choices(values, weights=weights, k=1)[0]

    # ------------------------------------------------------------------
    def view_support(self, secret: int, party: str) -> FrozenSet[ShareView]:
        """The set of views ``party`` can hold when the dealer shares ``secret``."""
        return frozenset(t.view(party) for t in self.transcripts(secret))

    def secrecy_holds(self, party: str) -> bool:
        """True when ``party``'s view distribution is identical for both secrets."""
        d0 = self.distribution(0, lambda t: t.view(party))
        d1 = self.distribution(1, lambda t: t.view(party))
        keys = set(d0) | set(d1)
        return all(abs(d0.get(k, 0.0) - d1.get(k, 0.0)) < 1e-12 for k in keys)

    def termination_rate(self, secret: int, parties: Iterable[str] = ("A", "B")) -> float:
        """Probability that every listed party completes the share phase."""
        targets = tuple(parties)
        total = 0.0
        for transcript in self.transcripts(secret):
            if all(p in transcript.completed for p in targets):
                total += transcript.probability
        return total


class ScriptedShareRunner:
    """Runs the share phase with one party's messages scripted (the attacker)."""

    def __init__(self, candidate: CandidateAVSS, active: Sequence[str] = ("D", "A", "B")) -> None:
        self.candidate = candidate
        self.active = tuple(active)

    def run(
        self,
        secret: Optional[int],
        randomness: Dict[str, Any],
        scripted_party: str,
        script: Mapping[Tuple[int, str, str], Any],
    ) -> Transcript:
        """Execute one run; ``secret`` may be None when the dealer is scripted."""
        full_randomness = {p: None for p in PARTIES}
        full_randomness.update(randomness)
        log, inboxes = _run_share_phase(
            self.candidate,
            secret if secret is not None else 0,
            full_randomness,
            self.active,
            script=script,
            scripted_party=scripted_party,
        )
        completed = frozenset(
            party
            for party in self.active
            if party != scripted_party
            and self.candidate.share_complete_fn(
                party, full_randomness[party], dict(inboxes[party])
            )
        )
        return Transcript(
            secret=secret if secret is not None else -1,
            randomness=tuple(sorted(full_randomness.items())),
            messages=tuple(sorted(log.items())),
            completed=completed,
            probability=1.0,
        )


class ReconstructionRunner:
    """Runs the reconstruction phase among a set of active parties.

    Each party contributes its share-phase view (possibly empty for a party
    that heard nothing, possibly *fabricated* for the Claim-2 attacker) and
    its randomness; the runner executes the candidate's reconstruction rounds
    synchronously and collects outputs.
    """

    def __init__(self, candidate: CandidateAVSS, active: Sequence[str] = ("A", "B", "C")) -> None:
        self.candidate = candidate
        self.active = tuple(active)

    def run(
        self,
        share_views: Mapping[str, Mapping[Tuple[int, str], Any]],
        randomness: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Optional[int]]:
        """Execute reconstruction and return each active party's output."""
        randomness = dict(randomness or {})
        rec_inboxes: Dict[str, Dict[Tuple[int, str], Any]] = {p: {} for p in PARTIES}
        for round_index in range(self.candidate.rec_rounds):
            outgoing: Dict[Tuple[str, str], Any] = {}
            for sender in self.active:
                sends = self.candidate.rec_message_fn(
                    sender,
                    randomness.get(sender),
                    dict(share_views.get(sender, {})),
                    round_index,
                    dict(rec_inboxes[sender]),
                )
                for receiver, message in sends.items():
                    outgoing[(sender, receiver)] = message
            for (sender, receiver), message in outgoing.items():
                rec_inboxes[receiver][(round_index, sender)] = message
        outputs: Dict[str, Optional[int]] = {}
        for party in self.active:
            outputs[party] = self.candidate.rec_output_fn(
                party,
                randomness.get(party),
                dict(share_views.get(party, {})),
                dict(rec_inboxes[party]),
            )
        return outputs
