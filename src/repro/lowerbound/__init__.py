"""Section-2 lower bound: transcript enumeration and the two attacks."""

from repro.lowerbound.attack import (
    DealerAttackOutcome,
    DealerSplitAttack,
    ReconstructionAttack,
    ReconstructionAttackOutcome,
)
from repro.lowerbound.experiment import (
    CORRECTNESS_FAILURE_THRESHOLD,
    LowerBoundRow,
    evaluate_candidate,
    format_report,
    run_experiment,
)
from repro.lowerbound.toy_avss import all_candidates, echo_checked_avss, masked_xor_avss
from repro.lowerbound.transcripts import (
    CandidateAVSS,
    ReconstructionRunner,
    ScriptedShareRunner,
    ShareEnumerator,
    Transcript,
)

__all__ = [
    "DealerAttackOutcome",
    "DealerSplitAttack",
    "ReconstructionAttack",
    "ReconstructionAttackOutcome",
    "CORRECTNESS_FAILURE_THRESHOLD",
    "LowerBoundRow",
    "evaluate_candidate",
    "format_report",
    "run_experiment",
    "all_candidates",
    "echo_checked_avss",
    "masked_xor_avss",
    "CandidateAVSS",
    "ReconstructionRunner",
    "ScriptedShareRunner",
    "ShareEnumerator",
    "Transcript",
]
