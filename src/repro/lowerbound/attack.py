"""The Section-2 attacks: Claim 1 (dealer view-splitting) and Claim 2
(reconstruction re-simulation).

Both attacks are *generic*: they only use the candidate protocol's transcript
distributions, exactly as in the paper.  The dealer attack samples its guesses
from the conditional distributions of Claim 1 and then actually executes the
share phase against honest A and B; the reconstruction attack lets a corrupted
B behave honestly during sharing and then re-samples a fake view consistent
with the messages it really exchanged, exactly as in Lemma 2.10.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.lowerbound.transcripts import (
    CandidateAVSS,
    ReconstructionRunner,
    ScriptedShareRunner,
    ShareEnumerator,
    Transcript,
)


def _feature_randomness(party: str):
    return lambda transcript: transcript.randomness_of(party)


def _feature_messages(x: str, y: str):
    return lambda transcript: transcript.messages_between(x, y)


@dataclass(frozen=True)
class DealerAttackOutcome:
    """Result of one execution of the Claim-1 dealer attack."""

    applicable: bool
    guessed_randomness: bool
    a_completed: bool
    b_completed: bool
    a_view_consistent_with_zero: bool
    b_view_consistent_with_one: bool

    @property
    def split_achieved(self) -> bool:
        """True when the attack produced the contradictory completed views."""
        return (
            self.applicable
            and self.a_completed
            and self.b_completed
            and self.a_view_consistent_with_zero
            and self.b_view_consistent_with_one
        )


@dataclass
class DealerSplitAttack:
    """Claim 1: a faulty dealer makes A see a share of 0 and B a share of 1.

    The dealer samples, from the candidate's own transcript distributions,

    * a guess ``s_A`` of A's randomness (under secret 0),
    * the messages ``s_AB`` it expects A and B to exchange,
    * the messages ``s_AD`` it should exchange with A (consistent with 0),
    * a guess ``s_B`` of B's randomness (under secret 1, given ``s_AB``),
    * the messages ``s_BD`` it should exchange with B (consistent with 1),

    then plays the share phase sending exactly those messages and nothing to C.
    Whenever the randomness guesses are right, A and B complete the share phase
    with views drawn from ``V^0_A`` and ``V^1_B`` respectively.
    """

    candidate: CandidateAVSS

    def __post_init__(self) -> None:
        self.enumerator = ShareEnumerator(self.candidate, active=("D", "A", "B"))
        self.runner = ScriptedShareRunner(self.candidate, active=("D", "A", "B"))

    # ------------------------------------------------------------------
    def sample_guesses(self, rng: random.Random) -> Optional[Dict[str, Any]]:
        """Sample the dealer's guesses; None when some conditional is empty."""
        enum = self.enumerator
        try:
            s_a = enum.sample(rng, 0, _feature_randomness("A"))
            s_ab = enum.sample(
                rng,
                0,
                _feature_messages("A", "B"),
                lambda t: t.randomness_of("A") == s_a,
            )
            s_ad = enum.sample(
                rng,
                0,
                _feature_messages("A", "D"),
                lambda t: t.randomness_of("A") == s_a
                and t.messages_between("A", "B") == s_ab,
            )
            s_b = enum.sample(
                rng,
                1,
                _feature_randomness("B"),
                lambda t: t.messages_between("A", "B") == s_ab,
            )
            s_bd = enum.sample(
                rng,
                1,
                _feature_messages("B", "D"),
                lambda t: t.messages_between("A", "B") == s_ab
                and t.randomness_of("B") == s_b,
            )
        except ValueError:
            return None
        return {"s_a": s_a, "s_ab": s_ab, "s_ad": s_ad, "s_b": s_b, "s_bd": s_bd}

    def execute(self, rng: random.Random) -> DealerAttackOutcome:
        """Sample guesses, run the attacked share phase, classify the outcome."""
        guesses = self.sample_guesses(rng)
        if guesses is None:
            return DealerAttackOutcome(False, False, False, False, False, False)
        # The dealer's script: its halves of s_AD and s_BD; nothing to C.
        script: Dict[Tuple[int, str, str], Any] = {}
        for round_index, sender, receiver, message in guesses["s_ad"]:
            if sender == "D":
                script[(round_index, "D", receiver)] = message
        for round_index, sender, receiver, message in guesses["s_bd"]:
            if sender == "D":
                script[(round_index, "D", receiver)] = message
        actual_r_a = rng.choice(list(self.candidate.randomness.get("A", [None])))
        actual_r_b = rng.choice(list(self.candidate.randomness.get("B", [None])))
        transcript = self.runner.run(
            secret=None,
            randomness={"A": actual_r_a, "B": actual_r_b},
            scripted_party="D",
            script=script,
        )
        guessed = actual_r_a == guesses["s_a"] and actual_r_b == guesses["s_b"]
        return DealerAttackOutcome(
            applicable=True,
            guessed_randomness=guessed,
            a_completed="A" in transcript.completed,
            b_completed="B" in transcript.completed,
            a_view_consistent_with_zero=transcript.view("A")
            in self.enumerator.view_support(0, "A"),
            b_view_consistent_with_one=transcript.view("B")
            in self.enumerator.view_support(1, "B"),
        )

    def success_statistics(self, trials: int, seed: int = 0) -> Dict[str, float]:
        """Monte-Carlo estimate of the Claim-1 probabilities."""
        rng = random.Random(seed)
        outcomes = [self.execute(rng) for _ in range(trials)]
        applicable = [o for o in outcomes if o.applicable]
        guessed = [o for o in applicable if o.guessed_randomness]
        split = [o for o in applicable if o.split_achieved]
        split_given_guess = [o for o in guessed if o.split_achieved]
        return {
            "trials": float(trials),
            "applicable_rate": len(applicable) / trials if trials else 0.0,
            "guess_rate": len(guessed) / len(applicable) if applicable else 0.0,
            "split_rate": len(split) / len(applicable) if applicable else 0.0,
            "split_rate_given_guess": (
                len(split_given_guess) / len(guessed) if guessed else 0.0
            ),
        }


@dataclass(frozen=True)
class ReconstructionAttackOutcome:
    """Result of one execution of the Claim-2 reconstruction attack."""

    simulated: bool
    shared_secret: int
    a_output: Optional[int]
    c_output: Optional[int]

    @property
    def a_output_wrong(self) -> bool:
        """True when honest party A output a value different from the secret."""
        return self.a_output is not None and self.a_output != self.shared_secret


@dataclass
class ReconstructionAttack:
    """Claim 2: corrupted B makes honest A output the wrong value.

    The dealer is honest and shares 0; B behaves honestly during the share
    phase, then re-samples a view consistent with the real ``m_AB`` but with
    secret 1 (Lemma 2.10), and runs the reconstruction protocol from that fake
    view while D stays silent and C participates with an empty share view.
    """

    candidate: CandidateAVSS
    shared_secret: int = 0
    fake_secret: int = 1

    def __post_init__(self) -> None:
        self.enumerator = ShareEnumerator(self.candidate, active=("D", "A", "B"))
        self.rec_runner = ReconstructionRunner(self.candidate, active=("A", "B", "C"))

    # ------------------------------------------------------------------
    def _honest_share_run(self, rng: random.Random) -> Transcript:
        transcripts = self.enumerator.transcripts(self.shared_secret)
        weights = [t.probability for t in transcripts]
        return rng.choices(transcripts, weights=weights, k=1)[0]

    def execute(self, rng: random.Random) -> ReconstructionAttackOutcome:
        """Run the share phase honestly, then mount B's re-simulation attack."""
        transcript = self._honest_share_run(rng)
        m_ab = transcript.messages_between("A", "B")
        condition = lambda t: t.messages_between("A", "B") == m_ab  # noqa: E731
        simulated = True
        try:
            fake_r_b = self.enumerator.sample(
                rng, self.fake_secret, _feature_randomness("B"), condition
            )
            fake_bd = self.enumerator.sample(
                rng,
                self.fake_secret,
                _feature_messages("B", "D"),
                lambda t: condition(t) and t.randomness_of("B") == fake_r_b,
            )
        except ValueError:
            # No run with secret 1 is consistent with the observed m_AB: the
            # paper's attacker falls back to honest behaviour.
            simulated = False
            fake_r_b = transcript.randomness_of("B")
            fake_bd = transcript.messages_between("B", "D")

        fake_view: Dict[Tuple[int, str], Any] = {}
        for round_index, sender, receiver, message in m_ab:
            if receiver == "B":
                fake_view[(round_index, sender)] = message
        for round_index, sender, receiver, message in fake_bd:
            if receiver == "B":
                fake_view[(round_index, sender)] = message

        share_views = {
            "A": transcript.messages_to("A"),
            "B": fake_view,
            "C": {},  # C's messages from D are delayed past reconstruction.
        }
        randomness = {
            "A": transcript.randomness_of("A"),
            "B": fake_r_b,
            "C": transcript.randomness_of("C"),
        }
        outputs = self.rec_runner.run(share_views, randomness)
        return ReconstructionAttackOutcome(
            simulated=simulated,
            shared_secret=self.shared_secret,
            a_output=outputs.get("A"),
            c_output=outputs.get("C"),
        )

    def success_statistics(self, trials: int, seed: int = 0) -> Dict[str, float]:
        """Monte-Carlo estimate of the Claim-2 probabilities."""
        rng = random.Random(seed)
        outcomes = [self.execute(rng) for _ in range(trials)]
        wrong = [o for o in outcomes if o.a_output_wrong]
        no_output = [o for o in outcomes if o.a_output is None]
        simulated = [o for o in outcomes if o.simulated]
        return {
            "trials": float(trials),
            "simulation_rate": len(simulated) / trials if trials else 0.0,
            "a_wrong_output_rate": len(wrong) / trials if trials else 0.0,
            "a_no_output_rate": len(no_output) / trials if trials else 0.0,
        }
