"""String-keyed registries binding campaign specs to executable code.

Campaign specs (:mod:`repro.experiments.spec`) refer to protocol runners,
adversarial behaviours and message schedulers by *name* so they stay plain
JSON.  The three registries here resolve those names:

* :data:`RUNNERS` -- the one-call runners from :mod:`repro.core.api`.
* :data:`BEHAVIORS` -- behaviour-factory builders from
  :mod:`repro.adversary.behaviors` / :mod:`repro.adversary.attacks`.
* :data:`SCHEDULERS` -- scheduler builders from :mod:`repro.net.scheduler`
  and :mod:`repro.adversary.scheduling`.

Downstream code can extend any registry::

    @RUNNERS.register("my_protocol")
    def run_my_protocol(n, seed=0, scheduler=None, corruptions=None):
        ...
"""

from __future__ import annotations

import os
import signal
import time
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.adversary import attacks, behaviors, scheduling
from repro.core import api
from repro.errors import ExperimentError, FaultInjectionError
from repro.experiments.spec import BehaviorSpec, SchedulerSpec
from repro.net import scheduler as net_scheduler


class Registry:
    """A named mapping from string keys to callables.

    Each entry may carry a *normalizer*: a function applied to the keyword
    arguments before the entry is invoked.  Normalizers repair the lossy bits
    of JSON -- most importantly integer dictionary keys (JSON object keys are
    always strings), e.g. the ``inputs`` maps of the agreement runners.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Callable[..., Any]] = {}
        self._normalizers: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {}

    def register(
        self,
        name: str,
        normalizer: Optional[Callable[[Dict[str, Any]], Dict[str, Any]]] = None,
    ) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        """Decorator registering ``name``; re-registration overrides."""

        def install(target: Callable[..., Any]) -> Callable[..., Any]:
            self._entries[name] = target
            if normalizer is not None:
                self._normalizers[name] = normalizer
            return target

        return install

    def add(self, name: str, target: Callable[..., Any], **kwargs: Any) -> None:
        """Function-call form of :meth:`register`."""
        self.register(name, **kwargs)(target)

    def get(self, name: str) -> Callable[..., Any]:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise ExperimentError(
                f"unknown {self.kind} {name!r}; known: {known}"
            ) from None

    def normalize(self, name: str, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        """Apply the entry's normalizer (if any) to keyword arguments."""
        normalizer = self._normalizers.get(name)
        return normalizer(dict(kwargs)) if normalizer else dict(kwargs)

    def names(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries


RUNNERS = Registry("protocol runner")
BEHAVIORS = Registry("adversary behavior")
SCHEDULERS = Registry("scheduler")
FAULTS = Registry("chaos fault")


# ----------------------------------------------------------------------
# Normalizers
def _int_keyed_inputs(kwargs: Dict[str, Any]) -> Dict[str, Any]:
    """JSON object keys are strings; party-indexed maps need int keys back."""
    if "inputs" in kwargs:
        kwargs["inputs"] = {int(pid): value for pid, value in kwargs["inputs"].items()}
    return kwargs


# ----------------------------------------------------------------------
# Protocol runners (repro.core.api)
RUNNERS.add("acast", api.run_acast)
RUNNERS.add("svss", api.run_svss)
RUNNERS.add("aba", api.run_aba, normalizer=_int_keyed_inputs)
RUNNERS.add("common_subset", api.run_common_subset)
RUNNERS.add("weak_coin", api.run_weak_coin)
RUNNERS.add("coinflip", api.run_coinflip)
RUNNERS.add("fair_choice", api.run_fair_choice)
RUNNERS.add("fba", api.run_fba, normalizer=_int_keyed_inputs)


# ----------------------------------------------------------------------
# Adversarial behaviours.  Each entry is a ``(**params) -> factory`` builder;
# the returned factory is the ``process -> Behavior`` callable that
# :meth:`repro.net.runtime.Simulation.corrupt` expects.
BEHAVIORS.add("crash", behaviors.CrashBehavior.factory)
BEHAVIORS.add("hard_crash", behaviors.HardCrashBehavior.factory)
BEHAVIORS.add("silent_after", behaviors.SilentAfterBehavior.factory)
BEHAVIORS.add("replay", behaviors.ReplayBehavior.factory)
BEHAVIORS.add("random_noise", behaviors.RandomNoiseBehavior.factory)
BEHAVIORS.add("equivocating", behaviors.EquivocatingBehavior.factory)
BEHAVIORS.add("withholding_dealer", attacks.WithholdingDealerBehavior.factory)
BEHAVIORS.add("bad_share", attacks.BadShareBehavior.factory)
BEHAVIORS.add("point_corrupting", attacks.PointCorruptingBehavior.factory)
BEHAVIORS.add("deterministic_value_dealer", attacks.DeterministicValueDealer.factory)
BEHAVIORS.add("fba_value_injector", attacks.FBAValueInjector.factory)
BEHAVIORS.add("split_equivocator", attacks.SplitBrainEquivocator.factory)


# ----------------------------------------------------------------------
# Schedulers
SCHEDULERS.add("fifo", net_scheduler.FIFOScheduler)
SCHEDULERS.add("random", net_scheduler.RandomScheduler)
SCHEDULERS.add("isolate_party", scheduling.isolate_party)
SCHEDULERS.add("favour_parties", scheduling.favour_parties)
SCHEDULERS.add("split_brain", scheduling.split_brain)
SCHEDULERS.add("delay_protocol", scheduling.delay_protocol)
SCHEDULERS.add("delay_from_parties", net_scheduler.delay_from_parties)
SCHEDULERS.add("delay_to_parties", net_scheduler.delay_to_parties)


# ----------------------------------------------------------------------
# Chaos faults.  Registry-named process-level failures the worker entrypoint
# injects into itself (spec-activatable via ``ExperimentSpec.fault``); the
# supervised runner must survive every one of them.  They model, in order:
# a bug in trial code, a livelocked/hung trial, a worker whose interpreter
# bails out (e.g. a failed assertion in a compiled extension), and the OOM
# killer / a segfault.
def _fault_raise(message: str = "injected chaos fault") -> None:
    raise FaultInjectionError(message)


def _fault_hang(seconds: float = 3600.0) -> None:
    time.sleep(float(seconds))


def _fault_exit(code: int = 3) -> None:
    os._exit(int(code))


def _fault_sigkill() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


FAULTS.add("raise", _fault_raise)
FAULTS.add("hang", _fault_hang)
FAULTS.add("exit", _fault_exit)
FAULTS.add("sigkill", _fault_sigkill)


def inject_fault(spec: Optional[Mapping[str, Any]], chunk_index: int, attempt: int) -> None:
    """Worker-side chaos hook: fire the cell's fault if this dispatch matches.

    ``spec`` is the serialized :class:`~repro.experiments.spec.FaultSpec`
    (or ``None`` for the overwhelmingly common no-chaos case).  The
    ``chunks`` / ``attempts`` selector parameters are consumed here; the
    rest are passed to the registered fault callable.  ``attempts``
    defaults to ``[0]`` so a fault hits only the first dispatch of a chunk
    and bounded retries recover; ``None`` makes it hit every attempt.
    """
    if not spec:
        return
    params = dict(spec.get("params", {}))
    chunks = params.pop("chunks", None)
    attempts = params.pop("attempts", [0])
    if chunks is not None and chunk_index not in chunks:
        return
    if attempts is not None and attempt not in attempts:
        return
    FAULTS.get(str(spec["fault"]))(**params)


# ----------------------------------------------------------------------
def build_behavior_factory(spec: BehaviorSpec) -> Callable[..., Any]:
    """Instantiate the behaviour factory a :class:`BehaviorSpec` names."""
    builder = BEHAVIORS.get(spec.behavior)
    params = BEHAVIORS.normalize(spec.behavior, spec.params)
    return builder(**params)


def build_scheduler(spec: Optional[SchedulerSpec]) -> Optional[net_scheduler.Scheduler]:
    """Instantiate the scheduler a :class:`SchedulerSpec` names (or ``None``)."""
    if spec is None:
        return None
    builder = SCHEDULERS.get(spec.scheduler)
    params = SCHEDULERS.normalize(spec.scheduler, spec.params)
    return builder(**params)


# ----------------------------------------------------------------------
# The hostile scheduler family registers itself on import; pulling it in here
# (at the end, once the registries and builders above exist) means campaigns
# can name targeted_delay / session_starvation / partition_heal / rushing
# whether or not repro.scenarios was imported first.
import repro.scenarios.schedulers  # noqa: E402,F401  (self-registration)
import repro.scenarios.tamper  # noqa: E402,F401  (registers the tamper behaviour)
