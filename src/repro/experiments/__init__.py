"""Experiment campaign subsystem: declarative sweeps, parallel execution,
persisted results.

The paper's claims are statistical statements over many executions; this
package turns "many executions" into a first-class artifact:

* :mod:`~repro.experiments.spec` -- JSON-serializable campaign descriptions,
* :mod:`~repro.experiments.registry` -- string names for runners, behaviours
  and schedulers,
* :mod:`~repro.experiments.runner` -- deterministic sequential/parallel
  orchestration,
* :mod:`~repro.experiments.store` -- persisted, resumable results,
* :mod:`~repro.experiments.cli` -- ``python -m repro.experiments`` /
  ``repro-experiments``.
"""

from repro.experiments.registry import BEHAVIORS, FAULTS, RUNNERS, SCHEDULERS
from repro.experiments.runner import (
    CampaignInterrupted,
    CampaignProgress,
    run_campaign,
    run_cell,
    run_seeds,
    run_trial,
)
from repro.experiments.spec import (
    BehaviorSpec,
    CampaignSpec,
    ExecutionPolicy,
    ExperimentSpec,
    FaultSpec,
    SchedulerSpec,
)
from repro.experiments.store import ResultStore
from repro.experiments.supervisor import ChunkFailure, ChunkTask, WorkerSupervisor

__all__ = [
    "BEHAVIORS",
    "FAULTS",
    "RUNNERS",
    "SCHEDULERS",
    "BehaviorSpec",
    "CampaignInterrupted",
    "CampaignProgress",
    "CampaignSpec",
    "ChunkFailure",
    "ChunkTask",
    "ExecutionPolicy",
    "ExperimentSpec",
    "FaultSpec",
    "ResultStore",
    "SchedulerSpec",
    "WorkerSupervisor",
    "run_campaign",
    "run_cell",
    "run_seeds",
    "run_trial",
]
