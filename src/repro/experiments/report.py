"""Structured campaign reports: one canonical payload, three renderings.

The CLI's ``report`` and ``ablate`` commands both build the same JSON-shaped
payload (schema documented and validated in :mod:`repro.obs.schema`) and then
render it as fixed-width text, GitHub markdown, or raw JSON.  Keeping the
payload canonical means CI can validate one artifact, the claims gate reads
the same numbers humans see, and the renderings cannot drift apart.

The payload is deterministic for a given campaign and seed list: cell
summaries, histogram percentiles, contribution and sweep rows and claim
verdicts are all functions of the trial statistics.  The only wall-clock
derived fields are the advisory throughput columns (``deliveries_per_s``,
``wall_s_per_trial``).
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.metrics import summarize_histogram
from repro.obs.schema import REPORT_VERSION

if TYPE_CHECKING:
    from repro.core.results import TrialAggregate


def histogram_summaries(
    results: Mapping[str, "TrialAggregate"]
) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Per-cell percentile summaries of every merged metric histogram.

    ``{cell: {metric: {count, mean, p50, p90, p99, max}}}``; cells whose
    trials ran without a metrics registry simply have no entry.
    """
    summaries: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for name, aggregate in results.items():
        metrics = {
            metric: summarize_histogram(hist)
            for metric, hist in sorted(aggregate.metric_histograms.items())
        }
        if metrics:
            summaries[name] = metrics
    return summaries


def build_report(
    campaign: Optional[str],
    results: Mapping[str, "TrialAggregate"],
    contribution: Optional[Sequence[Any]] = None,
    sweep: Optional[Sequence[Any]] = None,
    claims: Optional[Any] = None,
    failures: Optional[Mapping[str, Mapping[str, Any]]] = None,
) -> Dict[str, Any]:
    """Assemble the canonical report payload (see :mod:`repro.obs.schema`).

    ``contribution`` / ``sweep`` rows and the ``claims`` report are included
    via their ``to_dict`` methods when given; absent analyses are absent
    keys, never empty placeholders, so a payload says what actually ran.
    """
    payload: Dict[str, Any] = {
        "report_version": REPORT_VERSION,
        "campaign": campaign,
        "cells": {
            name: aggregate.summary() for name, aggregate in sorted(results.items())
        },
    }
    histograms = histogram_summaries(results)
    if histograms:
        payload["histograms"] = histograms
    if contribution is not None:
        payload["contribution"] = [row.to_dict() for row in contribution]
    if sweep is not None:
        payload["sweep"] = [row.to_dict() for row in sweep]
    if claims is not None:
        payload["claims"] = claims.to_dict()
    if failures:
        payload["failures"] = {name: dict(record) for name, record in failures.items()}
    return payload


# ----------------------------------------------------------------------
# Renderings
SUMMARY_HEADER = (
    "cell",
    "trials",
    "disagree",
    "msgs/trial",
    "steps/trial",
    "drops/trial",
    "deliveries/s",
    "director actions",
    "value counts",
)


def summary_rows(summaries: Mapping[str, Mapping[str, Any]]) -> List[Sequence[Any]]:
    """:data:`SUMMARY_HEADER` rows from ``{cell: TrialAggregate.summary()}``."""
    rows: List[Sequence[Any]] = []
    for name, summary in sorted(summaries.items()):
        counts = ", ".join(
            f"{value}: {count}"
            for value, count in sorted(summary["value_counts"].items())
        )
        throughput = summary.get("deliveries_per_s")
        # .get throughout: results files written before the newer
        # observability columns existed keep reporting.
        dropped = summary.get("mean_dropped")
        director = summary.get("director_actions") or {}
        director_cell = ", ".join(
            f"{action}: {count}" for action, count in sorted(director.items())
        )
        rows.append(
            (
                name,
                summary["trials"],
                f"{summary['disagreement_rate']:.3f}",
                summary["mean_messages"],
                summary["mean_steps"],
                "-" if dropped is None else dropped,
                "-" if not throughput else f"{throughput:,.0f}".replace(",", "_"),
                director_cell or "-",
                counts or "-",
            )
        )
    return rows


HISTOGRAM_HEADER = ("cell", "metric", "count", "mean", "p50", "p90", "p99", "max")


def histogram_rows(
    histograms: Mapping[str, Mapping[str, Mapping[str, Any]]]
) -> List[Sequence[Any]]:
    """:data:`HISTOGRAM_HEADER` rows from a payload's ``histograms`` section."""

    def fmt(value: Any) -> str:
        if value is None:
            return "-"
        return f"{value:g}"

    rows: List[Sequence[Any]] = []
    for cell in sorted(histograms):
        for metric, summary in sorted(histograms[cell].items()):
            rows.append(
                (
                    cell,
                    metric,
                    summary.get("count", 0),
                    fmt(summary.get("mean")),
                    fmt(summary.get("p50")),
                    fmt(summary.get("p90")),
                    fmt(summary.get("p99")),
                    fmt(summary.get("max")),
                )
            )
    return rows


def _text_table(header: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    from repro.analysis.ablation import render_table

    return render_table(header, [tuple(str(cell) for cell in row) for row in rows])


def _markdown_table(header: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines) + "\n"


def _contribution_tables(payload: Mapping[str, Any]):
    from repro.analysis.ablation import (
        CONTRIBUTION_HEADER,
        SWEEP_HEADER,
        ContributionRow,
        SweepRow,
        format_contribution_rows,
        format_sweep_rows,
    )

    sections = []
    if "contribution" in payload:
        rows = [ContributionRow(**row) for row in payload["contribution"]]
        sections.append(
            ("per-factor contribution", CONTRIBUTION_HEADER, format_contribution_rows(rows))
        )
    if "sweep" in payload:
        rows = [
            SweepRow(
                **{
                    **row,
                    "disagreement_ci": tuple(row["disagreement_ci"]),
                    "bias_ci": None
                    if row.get("bias_ci") is None
                    else tuple(row["bias_ci"]),
                }
            )
            for row in payload["sweep"]
        ]
        sections.append(("attack sweep", SWEEP_HEADER, format_sweep_rows(rows)))
    return sections


def render_report_text(payload: Mapping[str, Any]) -> str:
    """Fixed-width text rendering of a report payload."""
    from repro.analysis.claims import ClaimReport, ClaimResult

    parts = [f"campaign: {payload.get('campaign')}\n"]
    parts.append(_text_table(SUMMARY_HEADER, summary_rows(payload["cells"])))
    histograms = payload.get("histograms")
    if histograms:
        parts.append("\nhistogram percentiles:\n")
        parts.append(_text_table(HISTOGRAM_HEADER, histogram_rows(histograms)))
    for title, header, rows in _contribution_tables(payload):
        parts.append(f"\n{title}:\n")
        parts.append(_text_table(header, rows))
    claims = payload.get("claims")
    if claims:
        report = ClaimReport(
            campaign=claims.get("campaign", ""),
            results=[ClaimResult(**entry) for entry in _claim_entries(claims)],
        )
        parts.append("\n" + report.render_text())
    failures = payload.get("failures")
    if failures:
        parts.append("\nquarantined cells: " + ", ".join(sorted(failures)) + "\n")
    return "".join(parts)


def render_report_markdown(payload: Mapping[str, Any]) -> str:
    """GitHub-markdown rendering of a report payload."""
    from repro.analysis.claims import ClaimReport, ClaimResult

    parts = [f"## Campaign `{payload.get('campaign')}`\n\n"]
    parts.append(_markdown_table(SUMMARY_HEADER, summary_rows(payload["cells"])))
    histograms = payload.get("histograms")
    if histograms:
        parts.append("\n### Histogram percentiles\n\n")
        parts.append(_markdown_table(HISTOGRAM_HEADER, histogram_rows(histograms)))
    for title, header, rows in _contribution_tables(payload):
        parts.append(f"\n### {title.title()}\n\n")
        parts.append(_markdown_table(header, rows))
    claims = payload.get("claims")
    if claims:
        report = ClaimReport(
            campaign=claims.get("campaign", ""),
            results=[ClaimResult(**entry) for entry in _claim_entries(claims)],
        )
        parts.append("\n" + report.render_markdown())
    failures = payload.get("failures")
    if failures:
        parts.append(
            "\n**Quarantined cells:** " + ", ".join(sorted(failures)) + "\n"
        )
    return "".join(parts)


def _claim_entries(claims: Mapping[str, Any]) -> List[Dict[str, Any]]:
    return [
        {**entry, "cells": tuple(entry.get("cells", ()))}
        for entry in claims.get("claims", [])
    ]


def render_report(payload: Mapping[str, Any], fmt: str) -> str:
    """Render a payload as ``text``, ``markdown`` or ``json``."""
    if fmt == "json":
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if fmt == "markdown":
        return render_report_markdown(payload)
    if fmt == "text":
        return render_report_text(payload)
    raise ValueError(f"unknown report format {fmt!r}")
