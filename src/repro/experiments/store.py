"""JSON persistence for campaign results, with cell-granular resume.

A :class:`ResultStore` is a single JSON file mapping cell names to their
persisted :class:`~repro.core.results.TrialAggregate` plus the spec hash the
result was computed under.  The file is deliberately deterministic -- sorted
keys, no timestamps -- so the same campaign always produces byte-identical
statistics regardless of worker count, which makes results diffable and
cacheable.  The one advisory exception is each cell's ``elapsed_s``
wall-clock total (kept *beside* the aggregate, never inside it), which backs
the ``deliveries/s`` throughput column of ``repro-experiments report``.

Resume protocol (used by :func:`repro.experiments.runner.run_campaign`):

* a cell is *complete* iff the store holds an entry under its name whose
  ``spec_hash`` matches the cell's current hash;
* entries with a stale hash (the cell definition changed) are ignored and
  overwritten;
* deleting an entry (or the :meth:`delete` helper / ``report --drop``) makes
  exactly that cell run again.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.results import TrialAggregate
from repro.errors import ExperimentError

STORE_VERSION = 1


class ResultStore:
    """Load/modify/save the persisted results of one campaign."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._data: Dict[str, Any] = {
            "version": STORE_VERSION,
            "campaign": None,
            "cells": {},
        }

    # ------------------------------------------------------------------
    @classmethod
    def open(cls, path: Union[str, Path]) -> "ResultStore":
        """Return a store for ``path``, loading existing contents if present."""
        store = cls(path)
        if store.path.exists():
            store.reload()
        return store

    def reload(self) -> None:
        """(Re)read the backing file, validating shape and version."""
        try:
            data = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ExperimentError(f"cannot read result store {self.path}: {exc}") from exc
        if not isinstance(data, dict) or "cells" not in data:
            raise ExperimentError(f"{self.path} is not a campaign result store")
        version = data.get("version")
        if version != STORE_VERSION:
            raise ExperimentError(
                f"{self.path}: unsupported store version {version!r} "
                f"(expected {STORE_VERSION})"
            )
        self._data = data

    def save(self) -> None:
        """Atomically write the store (write temp file, then rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self._data, indent=2, sort_keys=True) + "\n"
        temp = self.path.with_name(self.path.name + ".tmp")
        temp.write_text(text)
        os.replace(temp, self.path)

    # ------------------------------------------------------------------
    @property
    def campaign(self) -> Optional[str]:
        return self._data.get("campaign")

    def bind_campaign(self, name: str) -> None:
        """Claim the store for ``name``; refuse to mix campaigns in one file."""
        current = self._data.get("campaign")
        if current is None:
            self._data["campaign"] = name
        elif current != name:
            raise ExperimentError(
                f"result store {self.path} belongs to campaign {current!r}, "
                f"not {name!r}; use a different --out path"
            )

    # ------------------------------------------------------------------
    def cell_names(self) -> List[str]:
        return sorted(self._data["cells"])

    def has_cell(self, name: str, spec_hash: str) -> bool:
        """True when a result for ``name`` computed under ``spec_hash`` exists."""
        entry = self._data["cells"].get(name)
        return entry is not None and entry.get("spec_hash") == spec_hash

    def get(self, name: str) -> TrialAggregate:
        try:
            entry = self._data["cells"][name]
        except KeyError:
            raise ExperimentError(f"store {self.path} has no cell {name!r}") from None
        aggregate = TrialAggregate.from_dict(entry["aggregate"])
        # Wall-clock timing travels beside the aggregate: the statistics stay
        # byte-identical across worker counts, the throughput column survives
        # a reload.  Stores written before timing existed load as 0.0.
        aggregate.total_elapsed_s = float(entry.get("elapsed_s", 0.0))
        return aggregate

    def put(self, name: str, spec_hash: str, aggregate: TrialAggregate) -> None:
        self._data["cells"][name] = {
            "spec_hash": spec_hash,
            "aggregate": aggregate.to_dict(),
            "elapsed_s": round(aggregate.total_elapsed_s, 6),
        }

    def delete(self, name: str) -> bool:
        """Drop one cell's result; returns whether it existed."""
        return self._data["cells"].pop(name, None) is not None

    # ------------------------------------------------------------------
    def summaries(self) -> Dict[str, Dict[str, Any]]:
        """Headline metrics per cell (for ``report``)."""
        return {name: self.get(name).summary() for name in self.cell_names()}
