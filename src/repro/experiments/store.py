"""JSON persistence for campaign results, with chunk-granular resume.

A :class:`ResultStore` is a single JSON file mapping cell names to their
persisted :class:`~repro.core.results.TrialAggregate` plus the spec hash the
result was computed under.  The file is deliberately deterministic -- sorted
keys, no timestamps -- so the same campaign always produces byte-identical
statistics regardless of worker count, retries or crashes, which makes
results diffable and cacheable.  The one advisory exception is each cell's
``elapsed_s`` wall-clock total (kept *beside* the aggregate, never inside
it), which backs the ``deliveries/s`` throughput column of
``repro-experiments report``.

Store schema v2 adds two sections next to ``cells``:

* ``partial`` -- per-cell chunk checkpoints: every completed chunk of a
  not-yet-finished cell is persisted (with its seed list and spec hash) the
  moment it lands, so a campaign killed mid-cell resumes at *chunk*
  granularity instead of re-running the whole cell.  When the cell's last
  chunk completes, the chunks are merged in chunk order (byte-identical to a
  sequential run) and the partial entry is deleted -- a finished store holds
  an empty ``partial``.
* ``failures`` -- structured quarantine records for cells whose chunk
  exhausted its retries: error class, message, traceback, attempt count.
  Quarantined cells are *not* in ``cells``; a later run re-attempts them
  (resuming their healthy chunks from ``partial``) and a success clears the
  record.

Version 1 stores are migrated in memory on load (the two new sections start
empty) and rewritten as v2 on the next :meth:`~ResultStore.save`.

Resume protocol (used by :func:`repro.experiments.runner.run_campaign`):

* a cell is *complete* iff the store holds an entry under its name whose
  ``spec_hash`` matches the cell's current hash;
* entries -- including partial chunks -- with a stale hash (the cell
  definition changed) are ignored and overwritten;
* a partial chunk is only reused if its recorded seed list matches the
  cell's current chunking, so changing ``--chunk-trials`` safely recomputes;
* deleting an entry (or the :meth:`delete` helper / ``report --drop``) makes
  exactly that cell run again.

Concurrency: :meth:`acquire_lock` takes an exclusive pid-stamped lockfile
(``<path>.lock``) so two ``run --resume`` invocations on the same ``--out``
path fail fast instead of silently interleaving :meth:`save` calls; a lock
left by a dead process is detected and stolen.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.core.results import TrialAggregate
from repro.errors import ExperimentError

STORE_VERSION = 2


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for the pid in a lockfile."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return False
    return True


class ResultStore:
    """Load/modify/save the persisted results of one campaign."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._data: Dict[str, Any] = self._fresh()
        self._lock_held = False
        #: Set to the quarantine path when :meth:`reload` recovered from a
        #: corrupt file (so callers can warn the user).
        self.recovered_from: Optional[Path] = None

    @staticmethod
    def _fresh() -> Dict[str, Any]:
        return {
            "version": STORE_VERSION,
            "campaign": None,
            "cells": {},
            "partial": {},
            "failures": {},
        }

    # ------------------------------------------------------------------
    @classmethod
    def open(
        cls, path: Union[str, Path], recover_corrupt: bool = False
    ) -> "ResultStore":
        """Return a store for ``path``, loading existing contents if present.

        With ``recover_corrupt=True`` an unreadable/truncated file (e.g. a
        crash during a concurrent writer's ``save``) is quarantined to
        ``<path>.corrupt`` and the store starts fresh instead of raising.
        """
        store = cls(path)
        if store.path.exists():
            store.reload(recover_corrupt=recover_corrupt)
        return store

    def reload(self, recover_corrupt: bool = False) -> None:
        """(Re)read the backing file, validating shape and version."""
        try:
            try:
                data = json.loads(self.path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise ExperimentError(
                    f"cannot read result store {self.path}: {exc}"
                ) from exc
            if not isinstance(data, dict) or "cells" not in data:
                raise ExperimentError(f"{self.path} is not a campaign result store")
        except ExperimentError as exc:
            if not recover_corrupt:
                raise ExperimentError(
                    f"{exc}; quarantine it and start fresh with --recover-corrupt"
                ) from exc
            quarantine = self.path.with_name(self.path.name + ".corrupt")
            os.replace(self.path, quarantine)
            self.recovered_from = quarantine
            self._data = self._fresh()
            return
        version = data.get("version")
        if version == 1:
            data = self._migrate_v1(data)
        elif version != STORE_VERSION:
            raise ExperimentError(
                f"{self.path}: unsupported store version {version!r} "
                f"(expected {STORE_VERSION})"
            )
        self._data = data

    @staticmethod
    def _migrate_v1(data: Dict[str, Any]) -> Dict[str, Any]:
        """v1 -> v2: cells carry over; chunk/failure sections start empty."""
        upgraded = dict(data)
        upgraded["version"] = STORE_VERSION
        upgraded.setdefault("partial", {})
        upgraded.setdefault("failures", {})
        return upgraded

    def save(self) -> None:
        """Atomically write the store (write temp file, then rename).

        The temp file is removed on *any* failure in between, so an
        interrupted save never leaves a stray ``.tmp`` next to the store.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        text = json.dumps(self._data, indent=2, sort_keys=True) + "\n"
        temp = self.path.with_name(self.path.name + ".tmp")
        try:
            temp.write_text(text)
            os.replace(temp, self.path)
        finally:
            if temp.exists():
                temp.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Ownership lock
    @property
    def lock_path(self) -> Path:
        return self.path.with_name(self.path.name + ".lock")

    def acquire_lock(self) -> None:
        """Take the exclusive pid-stamped lockfile for this store path.

        Raises :class:`ExperimentError` when another *live* process holds
        it; a lock whose owner pid is dead (crashed run) is stolen.
        Re-acquiring a lock this store object already holds is a no-op.
        """
        if self._lock_held:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for _ in range(2):
            try:
                fd = os.open(self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                try:
                    owner = int(self.lock_path.read_text().strip() or "0")
                except (OSError, ValueError):
                    owner = None
                if owner is not None and not _pid_alive(owner):
                    # Stale lock from a crashed run; steal it and retry.
                    self.lock_path.unlink(missing_ok=True)
                    continue
                raise ExperimentError(
                    f"result store {self.path} is locked by "
                    f"{'process ' + str(owner) if owner else 'another run'}; "
                    f"a concurrent `run` on the same --out path would corrupt "
                    f"it (remove {self.lock_path} if that run is gone)"
                )
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self._lock_held = True
            return
        raise ExperimentError(
            f"could not acquire lock {self.lock_path}: lost the race twice"
        )

    def release_lock(self) -> None:
        if self._lock_held:
            self.lock_path.unlink(missing_ok=True)
            self._lock_held = False

    # ------------------------------------------------------------------
    @property
    def campaign(self) -> Optional[str]:
        return self._data.get("campaign")

    def bind_campaign(self, name: str) -> None:
        """Claim the store for ``name``; refuse to mix campaigns in one file."""
        current = self._data.get("campaign")
        if current is None:
            self._data["campaign"] = name
        elif current != name:
            raise ExperimentError(
                f"result store {self.path} belongs to campaign {current!r}, "
                f"not {name!r}; use a different --out path"
            )

    # ------------------------------------------------------------------
    def cell_names(self) -> List[str]:
        return sorted(self._data["cells"])

    def has_cell(self, name: str, spec_hash: str) -> bool:
        """True when a result for ``name`` computed under ``spec_hash`` exists."""
        entry = self._data["cells"].get(name)
        return entry is not None and entry.get("spec_hash") == spec_hash

    def get(self, name: str) -> TrialAggregate:
        try:
            entry = self._data["cells"][name]
        except KeyError:
            raise ExperimentError(f"store {self.path} has no cell {name!r}") from None
        aggregate = TrialAggregate.from_dict(entry["aggregate"])
        # Wall-clock timing travels beside the aggregate: the statistics stay
        # byte-identical across worker counts, the throughput column survives
        # a reload.  Stores written before timing existed load as 0.0.
        aggregate.total_elapsed_s = float(entry.get("elapsed_s", 0.0))
        return aggregate

    def put(self, name: str, spec_hash: str, aggregate: TrialAggregate) -> None:
        """Persist a cell's final aggregate; promotes away chunk/failure state."""
        self._data["cells"][name] = {
            "spec_hash": spec_hash,
            "aggregate": aggregate.to_dict(),
            "elapsed_s": round(aggregate.total_elapsed_s, 6),
        }
        self._data["partial"].pop(name, None)
        self._data["failures"].pop(name, None)

    def delete(self, name: str) -> bool:
        """Drop one cell's result (and any chunk/failure state); True if it existed."""
        existed = self._data["cells"].pop(name, None) is not None
        existed = self._data["partial"].pop(name, None) is not None or existed
        existed = self._data["failures"].pop(name, None) is not None or existed
        return existed

    # ------------------------------------------------------------------
    # Chunk-granular checkpoints
    def put_chunk(
        self,
        name: str,
        spec_hash: str,
        chunk_index: int,
        seeds: List[int],
        transport: Dict[str, Any],
    ) -> None:
        """Checkpoint one completed chunk of a not-yet-finished cell.

        ``transport`` is the chunk aggregate's
        :meth:`~repro.core.results.TrialAggregate.to_transport_dict`; the
        advisory wall-clock total is split out beside the aggregate, same as
        for whole cells.  A partial entry with a stale spec hash is replaced
        wholesale.
        """
        entry = self._data["partial"].get(name)
        if entry is None or entry.get("spec_hash") != spec_hash:
            entry = self._data["partial"][name] = {
                "spec_hash": spec_hash,
                "chunks": {},
            }
        payload = dict(transport)
        elapsed = float(payload.pop("total_elapsed_s", 0.0))
        entry["chunks"][str(int(chunk_index))] = {
            "seeds": [int(seed) for seed in seeds],
            "aggregate": payload,
            "elapsed_s": round(elapsed, 6),
        }

    def partial_chunks(self, name: str, spec_hash: str) -> Dict[int, Dict[str, Any]]:
        """Checkpointed chunks of ``name`` under ``spec_hash`` (else empty).

        Returns ``{chunk_index: {"seeds": [...], "aggregate": {...},
        "elapsed_s": ...}}``; callers must verify the seed lists still match
        the current chunking before reuse.
        """
        entry = self._data["partial"].get(name)
        if entry is None or entry.get("spec_hash") != spec_hash:
            return {}
        return {int(index): chunk for index, chunk in entry["chunks"].items()}

    def partial_cells(self) -> Dict[str, int]:
        """Cells with checkpointed chunks -> how many chunks are saved."""
        return {
            name: len(entry["chunks"])
            for name, entry in sorted(self._data["partial"].items())
        }

    # ------------------------------------------------------------------
    # Quarantine records
    def quarantine(self, name: str, spec_hash: str, record: Dict[str, Any]) -> None:
        """Record a structured failure for ``name`` (cell stays incomplete).

        The cell's healthy chunk checkpoints are deliberately *kept*: a
        later run re-attempts only the poison chunk.
        """
        self._data["failures"][name] = {"spec_hash": spec_hash, **record}

    def clear_failure(self, name: str) -> bool:
        return self._data["failures"].pop(name, None) is not None

    def failures(self) -> Dict[str, Dict[str, Any]]:
        """Quarantine records by cell name (sorted)."""
        return {name: dict(record) for name, record in sorted(self._data["failures"].items())}

    def quarantined_cells(self) -> List[str]:
        return sorted(self._data["failures"])

    # ------------------------------------------------------------------
    def summaries(self) -> Dict[str, Dict[str, Any]]:
        """Headline metrics per cell (for ``report``)."""
        return {name: self.get(name).summary() for name in self.cell_names()}
