"""Declarative experiment campaign specifications.

A *campaign* is a reproducible artifact: a named list of *cells*, each cell
describing one point of an experiment grid -- which protocol to run, with how
many parties, under which adversary (corrupted-party behaviours plus a
message scheduler), with which protocol parameters, over which seeds.  Every
piece is named by a registry string (:mod:`repro.experiments.registry`), so a
campaign serializes losslessly to JSON and back::

    campaign = CampaignSpec.grid(
        "bias-sweep",
        protocol="coinflip",
        n=4,
        seeds=range(50),
        axes={"epsilon": [0.25, 0.125], "rounds": [1, 3]},
    )
    campaign.save("bias_sweep.json")
    same = CampaignSpec.load("bias_sweep.json")

The specs deliberately contain *no* live objects: behaviours and schedulers
are named and parameterised, and instantiated per trial by the runner.  That
is what makes campaigns shippable to worker processes, diffable in review and
resumable across runs.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Union

from repro.errors import ExperimentError


def canonical_json(data: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace drift)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


@dataclass
class BehaviorSpec:
    """A named adversarial behaviour plus its constructor parameters."""

    behavior: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"behavior": self.behavior}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BehaviorSpec":
        return cls(behavior=str(data["behavior"]), params=dict(data.get("params", {})))


@dataclass
class SchedulerSpec:
    """A named message scheduler plus its constructor parameters."""

    scheduler: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"scheduler": self.scheduler}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SchedulerSpec":
        return cls(scheduler=str(data["scheduler"]), params=dict(data.get("params", {})))


@dataclass
class FaultSpec:
    """A named chaos fault plus its parameters, injected in the worker.

    The fault is resolved against :data:`repro.experiments.registry.FAULTS`
    and invoked by the worker entrypoint *before* a chunk's trials run.  Two
    well-known parameters select when it fires (both are consumed by the
    injection hook, everything else is passed to the fault callable):

    * ``chunks``: list of per-cell chunk indices to hit (default: all);
    * ``attempts``: list of dispatch attempts to hit (default ``[0]``, i.e.
      only the first try -- so retries recover; ``None`` means every
      attempt, which drives a cell into quarantine).

    Faults are *execution-plane* chaos: they never change what a trial
    computes, so they are excluded from :meth:`ExperimentSpec.spec_hash` and
    a chaos campaign checkpoints/merges byte-identically to a clean one.
    """

    fault: str
    params: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {"fault": self.fault}
        if self.params:
            data["params"] = dict(self.params)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        return cls(fault=str(data["fault"]), params=dict(data.get("params", {})))


@dataclass
class ExecutionPolicy:
    """Fault-tolerance policy for campaign execution.

    Every field is optional; ``None`` means "inherit" -- a policy given to
    :func:`~repro.experiments.runner.run_campaign` overrides the campaign's
    own ``policy`` field, which overrides the built-in defaults (no timeout,
    2 retries, no fail-fast).  Policy never affects *what* is computed, only
    how failures are handled, so it is not part of any spec hash.

    Attributes:
        trial_timeout_s: per-trial wall-clock budget.  A chunk's deadline is
            ``trial_timeout_s * len(chunk)``; a worker past its deadline is
            killed and the chunk re-dispatched.  Requires ``workers > 1``
            (the inline path cannot preempt a hung trial).
        max_chunk_retries: how many times a failed/timed-out chunk is
            re-dispatched before its cell is quarantined.
        fail_fast: abort the whole campaign on the first quarantined cell
            instead of completing the healthy ones.
        backoff_base_s: base of the deterministic exponential backoff
            (``min(2.0, base * 2**(attempt-1))`` seconds before retry k).
    """

    trial_timeout_s: Optional[float] = None
    max_chunk_retries: Optional[int] = None
    fail_fast: Optional[bool] = None
    backoff_base_s: Optional[float] = None

    def validate(self) -> None:
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ExperimentError(
                f"trial_timeout_s must be positive, got {self.trial_timeout_s}"
            )
        if self.max_chunk_retries is not None and self.max_chunk_retries < 0:
            raise ExperimentError(
                f"max_chunk_retries must be >= 0, got {self.max_chunk_retries}"
            )
        if self.backoff_base_s is not None and self.backoff_base_s < 0:
            raise ExperimentError(
                f"backoff_base_s must be >= 0, got {self.backoff_base_s}"
            )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {}
        if self.trial_timeout_s is not None:
            data["trial_timeout_s"] = self.trial_timeout_s
        if self.max_chunk_retries is not None:
            data["max_chunk_retries"] = self.max_chunk_retries
        if self.fail_fast is not None:
            data["fail_fast"] = bool(self.fail_fast)
        if self.backoff_base_s is not None:
            data["backoff_base_s"] = self.backoff_base_s
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionPolicy":
        return cls(
            trial_timeout_s=data.get("trial_timeout_s"),
            max_chunk_retries=data.get("max_chunk_retries"),
            fail_fast=data.get("fail_fast"),
            backoff_base_s=data.get("backoff_base_s"),
        )


@dataclass
class ExperimentSpec:
    """One cell of a campaign: a protocol configuration and its seeds.

    Attributes:
        name: unique (within the campaign) human-readable cell identifier.
        protocol: runner name in :data:`repro.experiments.registry.RUNNERS`.
        n: number of parties.
        seeds: the explicit seed list; each seed is one trial.  Seeds are
            explicit (never derived from wall clock or worker identity) so a
            campaign is exactly reproducible however trials are distributed.
        params: extra keyword arguments for the runner (e.g. ``rounds``,
            ``epsilon``, ``inputs``).
        adversary: corrupted party id -> behaviour spec.
        scheduler: optional message-scheduler spec (``None`` = runner default).
        scenario: optional named adversarial scenario
            (:mod:`repro.scenarios.library`).  The scenario contributes its
            corruption plan, fault timeline, hostile scheduler, matched field
            prime and default params, resolved against this cell's ``n``; the
            cell's own ``params`` override the scenario's, its ``adversary``
            entries are applied on top of the scenario's static corruptions,
            and an explicit cell ``scheduler`` beats the scenario's.
        invariants: safety-invariant checking
            (:mod:`repro.scenarios.invariants`) per trial.  ``None`` (the
            default, and the only value that serializes away) means "on for
            scenario cells, off otherwise"; ``True``/``False`` force it.  A
            violation aborts the campaign with an :class:`ExperimentError`.
        trial_timeout_s: per-cell override of
            :attr:`ExecutionPolicy.trial_timeout_s`.
        max_chunk_retries: per-cell override of
            :attr:`ExecutionPolicy.max_chunk_retries`.
        fault: optional chaos fault (:class:`FaultSpec`) injected in the
            worker entrypoint before this cell's chunks run.  Used by the
            chaos harness and CI; excluded from :meth:`spec_hash` along with
            the policy overrides, because none of them change the computed
            statistics.
    """

    #: Runner arguments the spec supplies through dedicated fields; cells may
    #: not also smuggle them in through ``params``.
    RESERVED_PARAMS = frozenset({"n", "seed", "seeds", "scheduler", "corruptions"})

    #: Execution-plane keys: serialized with the cell (workers need them) but
    #: excluded from :meth:`spec_hash` -- they change how trials are
    #: *supervised*, never what they compute, so stored results stay valid
    #: (and chaos runs checkpoint byte-identically to clean ones).
    EXECUTION_KEYS = ("fault", "trial_timeout_s", "max_chunk_retries")

    name: str
    protocol: str
    n: int
    seeds: List[int]
    params: Dict[str, Any] = field(default_factory=dict)
    adversary: Dict[int, BehaviorSpec] = field(default_factory=dict)
    scheduler: Optional[SchedulerSpec] = None
    scenario: Optional[str] = None
    invariants: Optional[bool] = None
    trial_timeout_s: Optional[float] = None
    max_chunk_retries: Optional[int] = None
    fault: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        self.seeds = [int(seed) for seed in self.seeds]
        self.adversary = {
            int(pid): spec if isinstance(spec, BehaviorSpec) else BehaviorSpec.from_dict(spec)
            for pid, spec in self.adversary.items()
        }
        if isinstance(self.scheduler, Mapping):
            self.scheduler = SchedulerSpec.from_dict(self.scheduler)
        if isinstance(self.fault, Mapping):
            self.fault = FaultSpec.from_dict(self.fault)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`ExperimentError`."""
        if not self.name:
            raise ExperimentError("experiment cell needs a non-empty name")
        if not self.protocol:
            raise ExperimentError(f"cell {self.name!r}: missing protocol name")
        if self.n < 1:
            raise ExperimentError(f"cell {self.name!r}: n must be positive, got {self.n}")
        if not self.seeds:
            raise ExperimentError(f"cell {self.name!r}: seed list is empty")
        reserved = self.RESERVED_PARAMS.intersection(self.params)
        if reserved:
            raise ExperimentError(
                f"cell {self.name!r}: params may not override "
                f"{', '.join(sorted(reserved))} (use the dedicated spec fields)"
            )
        for pid in self.adversary:
            if not 0 <= pid < self.n:
                raise ExperimentError(
                    f"cell {self.name!r}: corrupted pid {pid} outside 0..{self.n - 1}"
                )
        if self.trial_timeout_s is not None and self.trial_timeout_s <= 0:
            raise ExperimentError(
                f"cell {self.name!r}: trial_timeout_s must be positive, "
                f"got {self.trial_timeout_s}"
            )
        if self.max_chunk_retries is not None and self.max_chunk_retries < 0:
            raise ExperimentError(
                f"cell {self.name!r}: max_chunk_retries must be >= 0, "
                f"got {self.max_chunk_retries}"
            )
        if self.fault is not None and not self.fault.fault:
            raise ExperimentError(f"cell {self.name!r}: fault needs a non-empty name")

    @property
    def trials(self) -> int:
        """Number of trials this cell contributes."""
        return len(self.seeds)

    def spec_hash(self) -> str:
        """Content hash of the cell (name excluded) used for resume checks.

        Stored next to persisted results; a cell whose definition changed
        hashes differently, so stale results are never silently reused.
        Execution-plane keys (:data:`EXECUTION_KEYS`: chaos faults, timeout
        and retry overrides) are excluded -- they never change the computed
        statistics, so toggling them must not invalidate stored results.
        """
        data = self.to_dict()
        data.pop("name")
        for key in self.EXECUTION_KEYS:
            data.pop(key, None)
        return hashlib.sha256(canonical_json(data).encode()).hexdigest()[:16]

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "protocol": self.protocol,
            "n": self.n,
            "seeds": list(self.seeds),
        }
        if self.params:
            data["params"] = dict(self.params)
        if self.adversary:
            data["adversary"] = {
                str(pid): spec.to_dict() for pid, spec in sorted(self.adversary.items())
            }
        if self.scheduler is not None:
            data["scheduler"] = self.scheduler.to_dict()
        if self.scenario is not None:
            data["scenario"] = self.scenario
        if self.invariants is not None:
            # Serialized only when forced: the default (None) must hash
            # identically to pre-invariant specs so resume checks keep
            # accepting persisted results.
            data["invariants"] = bool(self.invariants)
        if self.trial_timeout_s is not None:
            data["trial_timeout_s"] = self.trial_timeout_s
        if self.max_chunk_retries is not None:
            data["max_chunk_retries"] = self.max_chunk_retries
        if self.fault is not None:
            data["fault"] = self.fault.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        try:
            return cls(
                name=str(data["name"]),
                protocol=str(data["protocol"]),
                n=int(data["n"]),
                seeds=list(data["seeds"]),
                params=dict(data.get("params", {})),
                adversary={
                    int(pid): BehaviorSpec.from_dict(spec)
                    for pid, spec in data.get("adversary", {}).items()
                },
                scheduler=(
                    SchedulerSpec.from_dict(data["scheduler"])
                    if data.get("scheduler") is not None
                    else None
                ),
                scenario=data.get("scenario"),
                invariants=data.get("invariants"),
                trial_timeout_s=data.get("trial_timeout_s"),
                max_chunk_retries=data.get("max_chunk_retries"),
                fault=(
                    FaultSpec.from_dict(data["fault"])
                    if data.get("fault") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ExperimentError(f"malformed experiment cell: {exc}") from exc


@dataclass
class CampaignSpec:
    """A named, ordered collection of experiment cells.

    ``policy`` (optional) is the campaign's fault-tolerance
    :class:`ExecutionPolicy`; per-cell ``trial_timeout_s`` /
    ``max_chunk_retries`` override it, and a policy passed directly to
    :func:`~repro.experiments.runner.run_campaign` (e.g. from CLI flags)
    overrides both.
    """

    name: str
    cells: List[ExperimentSpec] = field(default_factory=list)
    policy: Optional[ExecutionPolicy] = None

    def __post_init__(self) -> None:
        if isinstance(self.policy, Mapping):
            self.policy = ExecutionPolicy.from_dict(self.policy)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        if not self.name:
            raise ExperimentError("campaign needs a non-empty name")
        if not self.cells:
            raise ExperimentError(f"campaign {self.name!r} has no cells")
        if self.policy is not None:
            self.policy.validate()
        seen: set = set()
        for cell in self.cells:
            cell.validate()
            if cell.name in seen:
                raise ExperimentError(
                    f"campaign {self.name!r}: duplicate cell name {cell.name!r}"
                )
            seen.add(cell.name)

    @property
    def trials(self) -> int:
        """Total number of trials across all cells."""
        return sum(cell.trials for cell in self.cells)

    def cell(self, name: str) -> ExperimentSpec:
        """Look a cell up by name."""
        for cell in self.cells:
            if cell.name == name:
                return cell
        raise ExperimentError(f"campaign {self.name!r} has no cell {name!r}")

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "name": self.name,
            "cells": [cell.to_dict() for cell in self.cells],
        }
        if self.policy is not None and self.policy.to_dict():
            data["policy"] = self.policy.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        try:
            return cls(
                name=str(data["name"]),
                cells=[ExperimentSpec.from_dict(cell) for cell in data["cells"]],
                policy=(
                    ExecutionPolicy.from_dict(data["policy"])
                    if data.get("policy") is not None
                    else None
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed campaign: {exc}") from exc

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"campaign is not valid JSON: {exc}") from exc
        return cls.from_dict(data)

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())

    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        name: str,
        protocol: str,
        n: Union[int, Sequence[int]],
        seeds: Iterable[int],
        axes: Optional[Mapping[str, Sequence[Any]]] = None,
        params: Optional[Mapping[str, Any]] = None,
        adversary: Optional[Mapping[int, BehaviorSpec]] = None,
        scheduler: Optional[SchedulerSpec] = None,
        scenario: Optional[str] = None,
    ) -> "CampaignSpec":
        """Build a campaign as the cartesian product of parameter axes.

        ``n`` may be a single party count or a sequence of them (an implicit
        ``n`` axis); ``axes`` maps runner parameter names to value lists.
        Every grid point becomes one cell named ``<key>=<value>,...`` with
        the shared ``seeds``, ``params``, ``adversary`` and ``scheduler``.
        """
        seed_list = [int(seed) for seed in seeds]
        ns = [n] if isinstance(n, int) else list(n)
        axis_items = sorted((axes or {}).items())
        axis_keys = [key for key, _ in axis_items]
        axis_values = [list(values) for _, values in axis_items]
        cells: List[ExperimentSpec] = []
        for n_value in ns:
            for combo in itertools.product(*axis_values):
                labels = []
                if len(ns) > 1:
                    labels.append(f"n={n_value}")
                labels.extend(f"{key}={value}" for key, value in zip(axis_keys, combo))
                cell_params = dict(params or {})
                cell_params.update(zip(axis_keys, combo))
                cells.append(
                    ExperimentSpec(
                        name=",".join(labels) or "default",
                        protocol=protocol,
                        n=n_value,
                        seeds=list(seed_list),
                        params=cell_params,
                        adversary=dict(adversary or {}),
                        scheduler=scheduler,
                        scenario=scenario,
                    )
                )
        campaign = cls(name=name, cells=cells)
        campaign.validate()
        return campaign
