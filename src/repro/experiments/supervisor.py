"""Supervised parallel chunk execution: deadlines, retries, crash isolation.

The campaign runner used to drive a bare ``multiprocessing.Pool``: one hung
trial stalled the whole campaign and one worker killed by the OOM killer (or
a segfault in a compiled kernel) aborted it.  The protocols under test
tolerate ``t < n/3`` Byzantine parties; the harness measuring them should at
least tolerate a SIGKILL.  :class:`WorkerSupervisor` is the replacement
execution plane:

* each worker is a ``multiprocessing.Process`` talking to the supervisor
  over its own duplex :func:`~multiprocessing.Pipe`, so the supervisor knows
  exactly which chunk a dead worker was holding;
* every chunk carries a deadline (``trial_timeout_s * len(chunk)``); a
  worker past its deadline is SIGKILLed and replaced;
* failed or timed-out chunks are re-dispatched to a fresh worker up to
  ``max_retries`` times, after a deterministic exponential backoff
  (:func:`backoff_delay` -- a pure function of the attempt number);
* a chunk that exhausts its retries surfaces as a structured
  :class:`ChunkFailure` so the runner can quarantine its cell instead of
  aborting the campaign.

Determinism: supervision never changes *what* a chunk computes -- chunks are
seeded explicitly and merged by chunk index -- so a campaign that lost and
re-ran workers produces byte-identical statistics to an undisturbed
sequential run.  The chaos harness (``FAULTS`` in
:mod:`repro.experiments.registry`, exercised by ``tests/experiments`` and
the ``runner-chaos`` CI job) asserts exactly that.
"""

from __future__ import annotations

import heapq
import itertools
import multiprocessing
import multiprocessing.connection
import time
import traceback
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.results import TrialAggregate
from repro.experiments.backoff import (  # noqa: F401  (re-exported: public API)
    BACKOFF_CAP_S,
    DEFAULT_BACKOFF_BASE_S,
    backoff_delay,
)

#: Default bound on re-dispatches of one chunk before its cell quarantines.
DEFAULT_MAX_CHUNK_RETRIES = 2
#: Supervisor poll tick when no deadline is nearer (seconds).
_POLL_INTERVAL_S = 0.25
#: Grace given to a killed worker's ``join`` before it is abandoned.
_JOIN_GRACE_S = 5.0


@dataclass
class ChunkTask:
    """One dispatchable unit: a chunk of one cell's seeds (or a callable).

    Exactly one of ``cell_dict`` (registry-named campaign cell, shipped as
    plain JSON data) and ``callable_runner`` (picklable callable for
    :func:`~repro.experiments.runner.run_seeds`) is set.  ``attempt`` counts
    dispatches of this chunk: 0 for the first try, incremented per retry.
    """

    cell_name: str
    chunk_index: int
    seeds: List[int]
    cell_dict: Optional[Dict[str, Any]] = None
    callable_runner: Optional[Callable[..., Any]] = None
    runner_kwargs: Dict[str, Any] = field(default_factory=dict)
    timeout_s: Optional[float] = None
    max_retries: int = DEFAULT_MAX_CHUNK_RETRIES
    attempt: int = 0


@dataclass
class ChunkFailure:
    """Structured record of a chunk that exhausted its retries.

    ``kind`` is one of ``"exception"`` (the chunk raised), ``"timeout"``
    (its deadline passed and the worker was killed) or ``"worker-death"``
    (the worker process died without reporting -- SIGKILL, ``os._exit``,
    segfault).  ``attempts`` counts every dispatch, including the first.
    """

    cell_name: str
    chunk_index: int
    seeds: List[int]
    kind: str
    error: str
    message: str
    traceback: str
    attempts: int

    def to_record(self) -> Dict[str, Any]:
        """JSON shape persisted by ``ResultStore.quarantine``."""
        return {
            "chunk_index": self.chunk_index,
            "seeds": list(self.seeds),
            "kind": self.kind,
            "error": self.error,
            "message": self.message,
            "traceback": self.traceback,
            "attempts": self.attempts,
        }


# ----------------------------------------------------------------------
# Worker side
def execute_chunk(task: ChunkTask) -> Any:
    """Run one chunk (the worker entrypoint body; also the inline path).

    For cell tasks this is where the chaos hook fires -- *before* any trial
    runs, so an injected fault never half-executes a chunk -- and the return
    value is the chunk aggregate's transport dict.  For callable tasks the
    :class:`~repro.core.results.TrialAggregate` itself is returned (it
    travels pickled, preserving Python output types).
    """
    if task.cell_dict is not None:
        # Imported lazily: the registry pulls in the whole protocol stack,
        # and runner <-> supervisor would otherwise be an import cycle.
        from repro.experiments.registry import inject_fault
        from repro.experiments.runner import _run_cell_chunk

        fault = task.cell_dict.get("fault")
        inject_fault(fault, task.chunk_index, task.attempt)
        _, payload = _run_cell_chunk((task.chunk_index, task.cell_dict, task.seeds))
        return payload
    aggregate = TrialAggregate()
    for seed in task.seeds:
        aggregate.add(task.callable_runner(seed=seed, **task.runner_kwargs))
    return aggregate


def _worker_main(conn: multiprocessing.connection.Connection) -> None:
    """Worker loop: receive a task, run it, report; ``None`` means shut down.

    Every exception -- including :class:`BaseException` subclasses like an
    injected fault's ``SystemExit`` -- is reported back as a structured
    error tuple; only a broken pipe (supervisor gone) or ``KeyboardInterrupt``
    ends the loop silently.
    """
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if task is None:
            conn.close()
            return
        try:
            payload = execute_chunk(task)
            message: Tuple[Any, ...] = ("ok", payload)
        except KeyboardInterrupt:
            return
        except BaseException as exc:  # noqa: BLE001 -- crash isolation is the point
            message = ("error", type(exc).__name__, str(exc), traceback.format_exc())
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return


# ----------------------------------------------------------------------
# Supervisor side
def _supervisor_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits ``sys.path``); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class _Worker:
    """One supervised worker process plus its pipe and current assignment."""

    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, context: multiprocessing.context.BaseContext) -> None:
        parent_conn, child_conn = multiprocessing.Pipe()
        self.process = context.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn
        self.task: Optional[ChunkTask] = None
        self.deadline: Optional[float] = None

    def assign(self, task: ChunkTask) -> None:
        self.task = task
        self.deadline = (
            time.monotonic() + task.timeout_s if task.timeout_s is not None else None
        )
        self.conn.send(task)

    def kill(self) -> None:
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass
        self.process.join(timeout=_JOIN_GRACE_S)
        try:
            self.conn.close()
        except OSError:
            pass


class WorkerSupervisor:
    """Dispatch chunk tasks across supervised workers with retry/timeout.

    Args:
        workers: maximum concurrent worker processes.
        backoff_base_s: base of the deterministic retry backoff.
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`; the
            supervisor counts ``runner.retries``, ``runner.timeouts`` and
            ``runner.worker_restarts`` on it.
        context: multiprocessing context override (tests).

    :meth:`run` invokes ``on_result(task, payload)`` for every chunk that
    completed (possibly after retries, in completion order -- callers merge
    by ``task.chunk_index``) and ``on_failure(task, failure)`` once per
    chunk that exhausted its retries.  Either callback may raise to abort;
    workers are always torn down on the way out.  :meth:`cancel_cell` drops
    a cell's pending tasks and suppresses its in-flight results -- the
    quarantine path.
    """

    def __init__(
        self,
        workers: int,
        backoff_base_s: float = DEFAULT_BACKOFF_BASE_S,
        metrics: Optional[Any] = None,
        context: Optional[multiprocessing.context.BaseContext] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        self.backoff_base_s = backoff_base_s
        self.metrics = metrics
        self.context = context if context is not None else _supervisor_context()
        self._cancelled: set = set()
        self._retry_ticket = itertools.count()

    # ------------------------------------------------------------------
    def _inc(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def cancel_cell(self, cell_name: str) -> None:
        """Stop dispatching (and retrying) the named cell's chunks."""
        self._cancelled.add(cell_name)

    # ------------------------------------------------------------------
    def run(
        self,
        tasks: Sequence[ChunkTask],
        on_result: Callable[[ChunkTask, Any], None],
        on_failure: Callable[[ChunkTask, ChunkFailure], None],
    ) -> None:
        pending: deque = deque(tasks)
        delayed: List[Tuple[float, int, ChunkTask]] = []  # (ready_at, tiebreak, task)
        pool: List[_Worker] = []
        idle: List[_Worker] = []
        busy: Dict[Any, _Worker] = {}  # conn -> worker

        def retire(worker: _Worker) -> None:
            worker.kill()
            if worker in pool:
                pool.remove(worker)

        def handle_failure(task: ChunkTask, kind: str, error: str,
                           message: str, tb: str) -> None:
            if task.cell_name in self._cancelled:
                return
            if task.attempt < task.max_retries:
                self._inc("runner.retries")
                retry = replace(task, attempt=task.attempt + 1)
                ready_at = time.monotonic() + backoff_delay(
                    retry.attempt, self.backoff_base_s
                )
                heapq.heappush(delayed, (ready_at, next(self._retry_ticket), retry))
            else:
                on_failure(
                    task,
                    ChunkFailure(
                        cell_name=task.cell_name,
                        chunk_index=task.chunk_index,
                        seeds=list(task.seeds),
                        kind=kind,
                        error=error,
                        message=message,
                        traceback=tb,
                        attempts=task.attempt + 1,
                    ),
                )

        try:
            while pending or delayed or busy:
                now = time.monotonic()
                while delayed and delayed[0][0] <= now:
                    pending.append(heapq.heappop(delayed)[2])

                # Dispatch: fill idle workers, growing the pool up to the cap.
                while pending and (idle or len(pool) < self.workers):
                    task = pending.popleft()
                    if task.cell_name in self._cancelled:
                        continue
                    if not idle:
                        worker = _Worker(self.context)
                        pool.append(worker)
                        idle.append(worker)
                    worker = idle.pop()
                    try:
                        worker.assign(task)
                    except (BrokenPipeError, OSError):
                        # Worker died while idle; replace it and redo the
                        # dispatch (the task has not been attempted).
                        retire(worker)
                        self._inc("runner.worker_restarts")
                        pending.appendleft(task)
                        continue
                    busy[worker.conn] = worker

                if not busy:
                    if delayed and not pending:
                        # Nothing in flight; sleep until the next retry is due.
                        time.sleep(max(0.0, min(delayed[0][0] - time.monotonic(),
                                                _POLL_INTERVAL_S)))
                    continue

                # Wait for results, but wake for the nearest deadline/retry.
                timeout = _POLL_INTERVAL_S
                now = time.monotonic()
                for worker in busy.values():
                    if worker.deadline is not None:
                        timeout = min(timeout, worker.deadline - now)
                if delayed:
                    timeout = min(timeout, delayed[0][0] - now)
                ready = multiprocessing.connection.wait(
                    list(busy), timeout=max(0.0, timeout)
                )

                for conn in ready:
                    worker = busy.pop(conn)
                    task = worker.task
                    worker.task = None
                    worker.deadline = None
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        # The worker died without reporting: SIGKILL,
                        # os._exit, segfault.  Replace it; the chunk burns
                        # one attempt.
                        retire(worker)
                        self._inc("runner.worker_restarts")
                        exitcode = worker.process.exitcode
                        handle_failure(
                            task,
                            "worker-death",
                            "WorkerDied",
                            f"worker process died (exitcode {exitcode}) while "
                            f"running chunk {task.chunk_index} of cell "
                            f"{task.cell_name!r}",
                            "",
                        )
                        continue
                    idle.append(worker)
                    if message[0] == "ok":
                        if task.cell_name not in self._cancelled:
                            on_result(task, message[1])
                    else:
                        _, error, detail, tb = message
                        handle_failure(task, "exception", error, detail, tb)

                # Deadline sweep: kill workers whose chunk overran its budget.
                now = time.monotonic()
                for conn, worker in list(busy.items()):
                    if worker.deadline is not None and now > worker.deadline:
                        busy.pop(conn)
                        task = worker.task
                        retire(worker)
                        self._inc("runner.timeouts")
                        self._inc("runner.worker_restarts")
                        handle_failure(
                            task,
                            "timeout",
                            "ChunkTimeout",
                            f"chunk {task.chunk_index} of cell "
                            f"{task.cell_name!r} exceeded its "
                            f"{task.timeout_s:.3f}s deadline "
                            f"({len(task.seeds)} trials)",
                            "",
                        )
        finally:
            # Graceful shutdown for idle workers, SIGKILL for the rest --
            # no leaked processes whatever aborted the loop.
            for worker in idle:
                try:
                    worker.conn.send(None)
                except (BrokenPipeError, OSError):
                    pass
            deadline = time.monotonic() + 1.0
            for worker in pool:
                worker.process.join(timeout=max(0.0, deadline - time.monotonic()))
            for worker in pool:
                if worker.process.is_alive():
                    worker.kill()
                try:
                    worker.conn.close()
                except OSError:
                    pass
