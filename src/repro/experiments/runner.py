"""Campaign orchestration: sequential or process-parallel trial execution.

The runner turns a :class:`~repro.experiments.spec.CampaignSpec` into
:class:`~repro.core.results.TrialAggregate` statistics, one per cell.  Trials
are grouped into fixed-size *chunks*; each chunk is executed by a worker (a
``multiprocessing`` pool process, or inline when ``workers <= 1``) and the
per-chunk aggregates are merged back **in chunk order**.

Determinism: every trial is seeded explicitly from the spec's seed list and
workers carry no other randomness, so the merged statistics are identical
whatever the worker count or completion order -- a parallel campaign is
byte-for-byte the same artifact as a sequential one.  This is asserted by
``tests/experiments/test_runner.py``.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.results import TrialAggregate
from repro.experiments.registry import RUNNERS, build_behavior_factory, build_scheduler
from repro.experiments.spec import CampaignSpec, ExperimentSpec
from repro.experiments.store import ResultStore
from repro.net.runtime import SimulationResult

#: Seeds per dispatched chunk.  Small enough to keep a pool busy and progress
#: lively, large enough to amortise task pickling.
DEFAULT_CHUNK_TRIALS = 8

ProgressCallback = Callable[["CampaignProgress"], None]


@dataclass
class CampaignProgress:
    """Progress snapshot passed to the runner's progress callback."""

    cell: str
    cell_completed: int
    cell_trials: int
    completed: int
    total: int
    resumed: bool = False


def _chunks(seeds: Sequence[int], size: int) -> List[List[int]]:
    return [list(seeds[start : start + size]) for start in range(0, len(seeds), size)]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits ``sys.path``); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# Trial execution (shared by the inline and pooled paths)
def run_trial(cell: ExperimentSpec, seed: int) -> SimulationResult:
    """Run one trial of ``cell``: resolve registry names, build, simulate."""
    runner = RUNNERS.get(cell.protocol)
    kwargs = RUNNERS.normalize(cell.protocol, cell.params)
    corruptions = {
        pid: build_behavior_factory(spec) for pid, spec in sorted(cell.adversary.items())
    }
    return runner(
        n=cell.n,
        seed=seed,
        scheduler=build_scheduler(cell.scheduler),
        corruptions=corruptions or None,
        **kwargs,
    )


def _run_cell_chunk(task: Tuple[int, Dict[str, Any], List[int]]) -> Tuple[int, Dict[str, Any]]:
    """Worker entry point: run one chunk of one cell's seeds.

    Takes and returns plain picklable data (the cell as a dict, the aggregate
    as a dict) so it works under both fork and spawn start methods.  The
    sequential path calls this exact function inline, which is what makes
    parallel and sequential campaigns bit-identical by construction.
    """
    index, cell_dict, seeds = task
    cell = ExperimentSpec.from_dict(cell_dict)
    aggregate = TrialAggregate()
    for seed in seeds:
        aggregate.add(run_trial(cell, seed))
    return index, aggregate.to_dict()


def run_cell(cell: ExperimentSpec, chunk_trials: int = DEFAULT_CHUNK_TRIALS) -> TrialAggregate:
    """Run every trial of one cell sequentially and return its aggregate."""
    cell.validate()
    merged = TrialAggregate.empty()
    cell_dict = cell.to_dict()
    for index, chunk in enumerate(_chunks(cell.seeds, chunk_trials)):
        _, chunk_dict = _run_cell_chunk((index, cell_dict, chunk))
        merged = merged.merge(TrialAggregate.from_dict(chunk_dict))
    return merged


# ----------------------------------------------------------------------
# Campaign orchestration
def run_campaign(
    campaign: CampaignSpec,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressCallback] = None,
    chunk_trials: int = DEFAULT_CHUNK_TRIALS,
) -> Dict[str, TrialAggregate]:
    """Run (or resume) a campaign and return ``{cell name: aggregate}``.

    Args:
        campaign: the declarative spec; validated before anything runs.
        workers: process-pool size; ``<= 1`` runs inline in this process.
        store: optional :class:`ResultStore`.  Cells whose results are
            already persisted (matching spec hash) are *not* re-run; freshly
            completed cells are persisted -- and the store saved -- as soon
            as their last chunk lands, so an interrupted campaign resumes at
            cell granularity.
        progress: optional callback invoked after every completed chunk (and
            once per resumed cell) with a :class:`CampaignProgress`.
        chunk_trials: seeds per dispatched chunk.
    """
    campaign.validate()
    for cell in campaign.cells:  # fail fast on unknown registry names
        RUNNERS.get(cell.protocol)
        for spec in cell.adversary.values():
            build_behavior_factory(spec)
        build_scheduler(cell.scheduler)
    if store is not None:
        store.bind_campaign(campaign.name)

    total = campaign.trials
    completed = 0
    results: Dict[str, TrialAggregate] = {}

    # Partition cells into resumed and pending, then chunk the pending ones.
    tasks: List[Tuple[int, Dict[str, Any], List[int]]] = []
    task_cell: Dict[int, ExperimentSpec] = {}
    cell_chunks: Dict[str, Dict[int, Optional[Dict[str, Any]]]] = {}
    cell_done: Dict[str, int] = {}
    for cell in campaign.cells:
        if store is not None and store.has_cell(cell.name, cell.spec_hash()):
            results[cell.name] = store.get(cell.name)
            completed += cell.trials
            if progress is not None:
                progress(
                    CampaignProgress(
                        cell=cell.name,
                        cell_completed=cell.trials,
                        cell_trials=cell.trials,
                        completed=completed,
                        total=total,
                        resumed=True,
                    )
                )
            continue
        cell_dict = cell.to_dict()
        cell_chunks[cell.name] = {}
        cell_done[cell.name] = 0
        for chunk in _chunks(cell.seeds, chunk_trials):
            index = len(tasks)
            tasks.append((index, cell_dict, chunk))
            task_cell[index] = cell
            cell_chunks[cell.name][index] = None

    def complete_chunk(index: int, aggregate_dict: Dict[str, Any]) -> None:
        nonlocal completed
        cell = task_cell[index]
        chunks = cell_chunks[cell.name]
        chunks[index] = aggregate_dict
        chunk_len = len(tasks[index][2])
        cell_done[cell.name] += chunk_len
        completed += chunk_len
        if all(part is not None for part in chunks.values()):
            merged = TrialAggregate.empty()
            for task_index in sorted(chunks):
                merged = merged.merge(TrialAggregate.from_dict(chunks[task_index]))
            results[cell.name] = merged
            if store is not None:
                store.put(cell.name, cell.spec_hash(), merged)
                store.save()
        if progress is not None:
            progress(
                CampaignProgress(
                    cell=cell.name,
                    cell_completed=cell_done[cell.name],
                    cell_trials=cell.trials,
                    completed=completed,
                    total=total,
                )
            )

    if workers > 1 and len(tasks) > 1:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            for index, aggregate_dict in pool.imap_unordered(_run_cell_chunk, tasks):
                complete_chunk(index, aggregate_dict)
    else:
        for task in tasks:
            index, aggregate_dict = _run_cell_chunk(task)
            complete_chunk(index, aggregate_dict)

    return results


# ----------------------------------------------------------------------
# Generic seed fan-out (backs api.run_many(workers=N))
def _run_seeds_chunk(
    task: Tuple[int, Callable[..., SimulationResult], List[int], Dict[str, Any]],
) -> Tuple[int, TrialAggregate]:
    index, runner, seeds, kwargs = task
    aggregate = TrialAggregate()
    for seed in seeds:
        aggregate.add(runner(seed=seed, **kwargs))
    # Unlike the campaign path, chunks travel back as pickled aggregates (not
    # to_dict), so outputs keep their Python types (frozensets, tuples, ...)
    # and the result is indistinguishable from a sequential run_many.
    return index, aggregate


def run_seeds(
    runner: Callable[..., SimulationResult],
    seeds: Iterable[int],
    workers: int = 1,
    chunk_trials: int = DEFAULT_CHUNK_TRIALS,
    **kwargs: Any,
) -> TrialAggregate:
    """Fan ``runner`` out over ``seeds`` across a process pool.

    ``runner`` and ``kwargs`` must be picklable (module-level callables and
    plain data).  For registry-named experiments prefer :func:`run_campaign`,
    whose tasks are always plain JSON-shaped data.
    """
    seed_list = [int(seed) for seed in seeds]
    tasks = [
        (index, runner, chunk, kwargs)
        for index, chunk in enumerate(_chunks(seed_list, chunk_trials))
    ]
    parts: Dict[int, TrialAggregate] = {}
    if workers > 1 and len(tasks) > 1:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            for index, aggregate in pool.imap_unordered(_run_seeds_chunk, tasks):
                parts[index] = aggregate
    else:
        for task in tasks:
            index, aggregate = _run_seeds_chunk(task)
            parts[index] = aggregate
    merged = TrialAggregate.empty()
    for index in sorted(parts):
        merged = merged.merge(parts[index])
    return merged
