"""Campaign orchestration: sequential or supervised-parallel trial execution.

The runner turns a :class:`~repro.experiments.spec.CampaignSpec` into
:class:`~repro.core.results.TrialAggregate` statistics, one per cell.  Trials
are grouped into fixed-size *chunks*; each chunk is executed by a worker (a
supervised :class:`~repro.experiments.supervisor.WorkerSupervisor` process,
or inline when ``workers <= 1``) and the per-chunk aggregates are merged back
**in chunk order**.

Determinism: every trial is seeded explicitly from the spec's seed list and
workers carry no other randomness, so the merged statistics are identical
whatever the worker count, completion order, or number of retries -- a
parallel campaign is byte-for-byte the same artifact as a sequential one,
even when workers were SIGKILLed and chunks re-dispatched.  This is asserted
by ``tests/experiments/test_runner.py`` and the chaos suite in
``tests/experiments/test_supervisor.py``.

Fault tolerance (see :mod:`repro.experiments.supervisor` for the execution
plane):

* chunks that raise, hang past their deadline, or lose their worker are
  re-dispatched with bounded retries and deterministic backoff;
* completed chunks are checkpointed to the :class:`ResultStore` as they
  land, so a killed campaign resumes mid-cell;
* a chunk that exhausts its retries *quarantines* its cell -- the campaign
  completes every healthy cell and surfaces a structured failure record --
  unless the policy says ``fail_fast``;
* ``KeyboardInterrupt`` tears the workers down, flushes the checkpoints and
  re-raises as :class:`CampaignInterrupted` (which reports how many trials
  were saved).
"""

from __future__ import annotations

import inspect
import multiprocessing
import time
import traceback
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.results import TrialAggregate
from repro.errors import ExperimentError
from repro.experiments.registry import RUNNERS, build_behavior_factory, build_scheduler
from repro.experiments.spec import CampaignSpec, ExecutionPolicy, ExperimentSpec
from repro.experiments.store import ResultStore
from repro.experiments.supervisor import (
    DEFAULT_BACKOFF_BASE_S,
    DEFAULT_MAX_CHUNK_RETRIES,
    ChunkFailure,
    ChunkTask,
    WorkerSupervisor,
    backoff_delay,
    execute_chunk,
)
from repro.net.runtime import SimulationResult

#: Seeds per dispatched chunk.  Small enough to keep a pool busy and progress
#: lively, large enough to amortise task pickling.
DEFAULT_CHUNK_TRIALS = 8

ProgressCallback = Callable[["CampaignProgress"], None]


class CampaignInterrupted(KeyboardInterrupt):
    """Ctrl-C during a campaign, after workers were torn down and completed
    chunks flushed to the store.  ``checkpointed_trials`` counts the trials
    persisted (resumable) at the moment of interruption."""

    def __init__(self, checkpointed_trials: int, total_trials: int) -> None:
        super().__init__(
            f"campaign interrupted; {checkpointed_trials}/{total_trials} "
            f"trials checkpointed"
        )
        self.checkpointed_trials = checkpointed_trials
        self.total_trials = total_trials


@dataclass
class CampaignProgress:
    """Progress snapshot passed to the runner's progress callback."""

    cell: str
    cell_completed: int
    cell_trials: int
    completed: int
    total: int
    resumed: bool = False


def _chunks(seeds: Sequence[int], size: int) -> List[List[int]]:
    return [list(seeds[start : start + size]) for start in range(0, len(seeds), size)]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits ``sys.path``); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# Trial execution (shared by the inline and pooled paths)
class CellExecutor:
    """One cell's trials with all per-trial setup amortised across a chunk.

    ``run_trial`` used to resolve registry names, build behaviour factories
    and (for scenarios) re-validate the whole spec *per seed*; for the short
    trials the campaign layer exists to mass-produce, that setup rivals the
    simulation itself.  An executor does it once per chunk:

    * runner lookup, parameter normalisation and behaviour factories are
      resolved in ``__init__`` and reused for every seed;
    * when the cell names a :mod:`scenario <repro.scenarios>`, its
      :class:`~repro.scenarios.engine.ScenarioRuntime` (selector resolution,
      scale preset, static corruption factories) is built once -- only the
      per-trial :class:`~repro.scenarios.engine.ScenarioDirector` is fresh
      per seed;
    * one shared session-intern table is passed to every trial's network, so
      the session tuples of identically-shaped trials are allocated once per
      chunk instead of once per trial.

    Schedulers and directors hold per-run state, so those are still built
    fresh for every seed; everything an executor shares between trials is
    read-only during a run, which is what keeps chunk results byte-identical
    to the one-executor-per-trial path (and therefore parallel campaigns
    byte-identical to sequential ones).
    """

    def __init__(self, cell: ExperimentSpec) -> None:
        cell.validate()
        self.cell = cell
        self.runner = RUNNERS.get(cell.protocol)
        #: Shared across this executor's trials (same topology => same tuples).
        self.session_table: Dict[Any, Any] = {}
        self.scenario_runtime = None
        if cell.scenario is not None:
            # Imported lazily: repro.scenarios builds on the experiments
            # registry, so a module-level import would be circular.
            from repro.scenarios.engine import ScenarioRuntime
            from repro.scenarios.library import get_scenario

            self.scenario_runtime = ScenarioRuntime(
                get_scenario(cell.scenario), n=cell.n
            )
            kwargs = RUNNERS.normalize(
                cell.protocol, self.scenario_runtime.runner_kwargs(cell.params)
            )
            if self.scenario_runtime.prime is not None and "prime" not in kwargs:
                kwargs["prime"] = self.scenario_runtime.prime
            corruptions = self.scenario_runtime.static_corruptions()
        else:
            kwargs = RUNNERS.normalize(cell.protocol, cell.params)
            corruptions = {}
        for pid, spec in sorted(cell.adversary.items()):
            corruptions[pid] = build_behavior_factory(spec)
        self.kwargs = kwargs
        self.corruptions = corruptions
        self._extras = self._supported_extras()
        #: Safety-invariant checking (repro.scenarios.invariants): the cell
        #: may force it either way; the default is on exactly for scenario
        #: cells, whose adversarial grids are where silent safety breaks
        #: would otherwise aggregate into garbage statistics.
        self.check_invariants = (
            cell.invariants
            if cell.invariants is not None
            else cell.scenario is not None
        )

    def _supported_extras(self) -> frozenset:
        """Which optional runner kwargs (director/session table) to forward.

        Registered runners are only required to take ``n`` / ``seed`` /
        ``scheduler`` / ``corruptions``; the in-tree :mod:`repro.core.api`
        runners all take the scenario/batching extras, but a downstream
        registry entry may not, and must keep working without them.
        """
        try:
            parameters = inspect.signature(self.runner).parameters
        except (TypeError, ValueError):  # builtins / C callables
            return frozenset()
        if any(p.kind is p.VAR_KEYWORD for p in parameters.values()):
            return frozenset({"director", "session_table"})
        supported = frozenset(
            name for name in ("director", "session_table") if name in parameters
        )
        if self.cell.scenario is not None and "director" not in supported:
            raise ExperimentError(
                f"cell {self.cell.name!r}: runner {self.cell.protocol!r} does not "
                f"accept a scenario director; scenarios need a director-aware runner"
            )
        return supported

    def _build_scheduler(self):
        if self.cell.scheduler is not None:
            return build_scheduler(self.cell.scheduler)
        if self.scenario_runtime is not None:
            return self.scenario_runtime.build_scheduler()
        return None

    def run(self, seed: int) -> SimulationResult:
        """Run the trial for one seed (schedulers/directors built fresh)."""
        call: Dict[str, Any] = dict(self.kwargs)
        if "session_table" in self._extras:
            call["session_table"] = self.session_table
        if self.scenario_runtime is not None:
            call["director"] = self.scenario_runtime.build_director()
        result = self.runner(
            n=self.cell.n,
            seed=seed,
            scheduler=self._build_scheduler(),
            corruptions=self.corruptions or None,
            **call,
        )
        if self.check_invariants:
            # Imported lazily, like the scenario runtime above.
            from repro.scenarios.invariants import assert_invariants

            assert_invariants(
                result,
                self.cell.protocol,
                context=f"cell {self.cell.name!r} seed {seed}",
                params=self.kwargs,
            )
        return result


def run_trial(cell: ExperimentSpec, seed: int) -> SimulationResult:
    """Run one trial of ``cell``: resolve registry names, build, simulate.

    One-shot convenience wrapper; loops should build a :class:`CellExecutor`
    once and call :meth:`CellExecutor.run` per seed.
    """
    return CellExecutor(cell).run(seed)


def _run_cell_chunk(task: Tuple[int, Dict[str, Any], List[int]]) -> Tuple[int, Dict[str, Any]]:
    """Run one chunk of one cell's seeds (the chunk-execution primitive).

    Takes and returns plain picklable data (the cell as a dict, the aggregate
    as a dict) so it works under both fork and spawn start methods.  The
    sequential path calls this exact function inline, which is what makes
    parallel and sequential campaigns bit-identical by construction.  Chaos
    faults are injected one level up (``supervisor.execute_chunk``), never
    here, so ``run_cell`` and direct callers stay fault-free.
    """
    index, cell_dict, seeds = task
    executor = CellExecutor(ExperimentSpec.from_dict(cell_dict))
    aggregate = TrialAggregate()
    for seed in seeds:
        aggregate.add(executor.run(seed))
    return index, aggregate.to_transport_dict()


def run_cell(cell: ExperimentSpec, chunk_trials: int = DEFAULT_CHUNK_TRIALS) -> TrialAggregate:
    """Run every trial of one cell sequentially and return its aggregate."""
    cell.validate()
    merged = TrialAggregate.empty()
    cell_dict = cell.to_dict()
    for index, chunk in enumerate(_chunks(cell.seeds, chunk_trials)):
        _, chunk_dict = _run_cell_chunk((index, cell_dict, chunk))
        merged = merged.merge(TrialAggregate.from_transport_dict(chunk_dict))
    return merged


# ----------------------------------------------------------------------
# Policy resolution
def _resolve_policy(
    campaign: CampaignSpec, override: Optional[ExecutionPolicy]
) -> ExecutionPolicy:
    """Fold override -> campaign policy -> defaults into a concrete policy."""

    def pick(attr: str, default: Any) -> Any:
        for layer in (override, campaign.policy):
            if layer is not None:
                value = getattr(layer, attr)
                if value is not None:
                    return value
        return default

    resolved = ExecutionPolicy(
        trial_timeout_s=pick("trial_timeout_s", None),
        max_chunk_retries=pick("max_chunk_retries", DEFAULT_MAX_CHUNK_RETRIES),
        fail_fast=pick("fail_fast", False),
        backoff_base_s=pick("backoff_base_s", DEFAULT_BACKOFF_BASE_S),
    )
    resolved.validate()
    return resolved


def _cell_limits(
    cell: ExperimentSpec, policy: ExecutionPolicy
) -> Tuple[Optional[float], int]:
    """(trial timeout, max retries) for one cell: cell override beats policy."""
    timeout = (
        cell.trial_timeout_s
        if cell.trial_timeout_s is not None
        else policy.trial_timeout_s
    )
    retries = (
        cell.max_chunk_retries
        if cell.max_chunk_retries is not None
        else policy.max_chunk_retries
    )
    return timeout, retries


# ----------------------------------------------------------------------
# Campaign orchestration
def run_campaign(
    campaign: CampaignSpec,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressCallback] = None,
    chunk_trials: int = DEFAULT_CHUNK_TRIALS,
    policy: Optional[ExecutionPolicy] = None,
    metrics: Optional[Any] = None,
    failures: Optional[Dict[str, ChunkFailure]] = None,
) -> Dict[str, TrialAggregate]:
    """Run (or resume) a campaign and return ``{cell name: aggregate}``.

    Args:
        campaign: the declarative spec; validated before anything runs.
        workers: supervised worker processes; ``<= 1`` runs inline in this
            process (retries still apply; timeouts need ``workers > 1``,
            since an inline trial cannot be preempted).
        store: optional :class:`ResultStore`.  Cells whose results are
            already persisted (matching spec hash) are *not* re-run, and
            checkpointed chunks of unfinished cells are reused, so an
            interrupted -- or killed -- campaign resumes at chunk
            granularity.  Completed chunks and quarantine records are
            persisted as they land.  The store's ownership lock is held for
            the duration of the run.
        progress: optional callback invoked after every completed chunk (and
            once per resumed cell) with a :class:`CampaignProgress`.
        chunk_trials: seeds per dispatched chunk.
        policy: execution-policy override (beats ``campaign.policy``).
        metrics: optional :class:`~repro.obs.metrics.MetricsRegistry`;
            retries, timeouts, worker restarts and quarantines are counted
            on it (``runner.*`` counters).
        failures: optional dict populated with ``{cell name: ChunkFailure}``
            for every quarantined cell (also persisted to ``store``).

    Returns the aggregates of every *healthy* cell.  Quarantined cells are
    absent from the result; with ``fail_fast`` the first quarantine raises
    :class:`ExperimentError` instead (after flushing the store).
    """
    campaign.validate()
    for cell in campaign.cells:
        # Fail fast on unknown registry/scenario names and unresolvable
        # selectors: building the executor performs every static resolution
        # a worker would, before any trial runs.
        CellExecutor(cell)
        build_scheduler(cell.scheduler)
    resolved = _resolve_policy(campaign, policy)
    if store is not None:
        store.bind_campaign(campaign.name)
        store.acquire_lock()

    total = campaign.trials
    completed = 0
    results: Dict[str, TrialAggregate] = {}
    quarantined: Dict[str, ChunkFailure] = failures if failures is not None else {}

    def inc(name: str, amount: int = 1) -> None:
        if metrics is not None:
            metrics.counter(name).inc(amount)

    try:
        # Partition cells into resumed and pending, then chunk the pending
        # ones -- reusing any checkpointed chunks whose seeds still match.
        tasks: List[ChunkTask] = []
        cell_specs: Dict[str, ExperimentSpec] = {}
        cell_chunks: Dict[str, Dict[int, Optional[Dict[str, Any]]]] = {}
        cell_done: Dict[str, int] = {}

        def finalize_cell(name: str) -> None:
            """Merge a cell's chunks in chunk order and persist the result."""
            cell = cell_specs[name]
            merged = TrialAggregate.empty()
            for chunk_index in sorted(cell_chunks[name]):
                merged = merged.merge(
                    TrialAggregate.from_transport_dict(cell_chunks[name][chunk_index])
                )
            results[name] = merged
            if store is not None:
                store.put(name, cell.spec_hash(), merged)

        for cell in campaign.cells:
            if store is not None and store.has_cell(cell.name, cell.spec_hash()):
                results[cell.name] = store.get(cell.name)
                completed += cell.trials
                if progress is not None:
                    progress(
                        CampaignProgress(
                            cell=cell.name,
                            cell_completed=cell.trials,
                            cell_trials=cell.trials,
                            completed=completed,
                            total=total,
                            resumed=True,
                        )
                    )
                continue
            cell_specs[cell.name] = cell
            cell_dict = cell.to_dict()
            timeout_s, max_retries = _cell_limits(cell, resolved)
            stored = (
                store.partial_chunks(cell.name, cell.spec_hash())
                if store is not None
                else {}
            )
            cell_chunks[cell.name] = {}
            cell_done[cell.name] = 0
            resumed_trials = 0
            for chunk_index, chunk in enumerate(_chunks(cell.seeds, chunk_trials)):
                entry = stored.get(chunk_index)
                if entry is not None and list(entry.get("seeds", [])) == chunk:
                    transport = dict(entry["aggregate"])
                    transport["total_elapsed_s"] = float(entry.get("elapsed_s", 0.0))
                    cell_chunks[cell.name][chunk_index] = transport
                    cell_done[cell.name] += len(chunk)
                    completed += len(chunk)
                    resumed_trials += len(chunk)
                else:
                    cell_chunks[cell.name][chunk_index] = None
                    tasks.append(
                        ChunkTask(
                            cell_name=cell.name,
                            chunk_index=chunk_index,
                            seeds=chunk,
                            cell_dict=cell_dict,
                            timeout_s=(
                                timeout_s * len(chunk)
                                if timeout_s is not None
                                else None
                            ),
                            max_retries=max_retries,
                        )
                    )
            if resumed_trials and progress is not None:
                progress(
                    CampaignProgress(
                        cell=cell.name,
                        cell_completed=cell_done[cell.name],
                        cell_trials=cell.trials,
                        completed=completed,
                        total=total,
                        resumed=True,
                    )
                )
            if all(part is not None for part in cell_chunks[cell.name].values()):
                # Every chunk was checkpointed; the previous run died between
                # the last chunk and the cell promotion.
                finalize_cell(cell.name)
                if store is not None:
                    store.save()

        supervisor: Optional[WorkerSupervisor] = None

        def complete_chunk(task: ChunkTask, transport: Dict[str, Any]) -> None:
            nonlocal completed
            if task.cell_name in quarantined:
                return
            cell = cell_specs[task.cell_name]
            chunks = cell_chunks[task.cell_name]
            chunks[task.chunk_index] = transport
            cell_done[task.cell_name] += len(task.seeds)
            completed += len(task.seeds)
            if store is not None:
                store.put_chunk(
                    task.cell_name,
                    cell.spec_hash(),
                    task.chunk_index,
                    task.seeds,
                    transport,
                )
            if all(part is not None for part in chunks.values()):
                finalize_cell(task.cell_name)
            if store is not None:
                store.save()
            if progress is not None:
                progress(
                    CampaignProgress(
                        cell=task.cell_name,
                        cell_completed=cell_done[task.cell_name],
                        cell_trials=cell.trials,
                        completed=completed,
                        total=total,
                    )
                )

        def handle_failure(task: ChunkTask, failure: ChunkFailure) -> None:
            if task.cell_name in quarantined:
                return
            quarantined[task.cell_name] = failure
            inc("runner.quarantined_cells")
            if supervisor is not None:
                supervisor.cancel_cell(task.cell_name)
            if store is not None:
                cell = cell_specs[task.cell_name]
                store.quarantine(task.cell_name, cell.spec_hash(), failure.to_record())
                store.save()
            if resolved.fail_fast:
                raise ExperimentError(
                    f"cell {task.cell_name!r} quarantined after "
                    f"{failure.attempts} attempt(s) on chunk "
                    f"{failure.chunk_index} ({failure.kind}: {failure.error}: "
                    f"{failure.message}) -- fail_fast aborted the campaign"
                )

        try:
            if workers > 1 and tasks:
                supervisor = WorkerSupervisor(
                    min(workers, len(tasks)),
                    backoff_base_s=resolved.backoff_base_s,
                    metrics=metrics,
                )
                supervisor.run(tasks, complete_chunk, handle_failure)
            else:
                _run_inline(
                    tasks, resolved, quarantined, complete_chunk, handle_failure, inc
                )
        except KeyboardInterrupt:
            # Workers are already torn down (supervisor's finally); completed
            # chunks were flushed as they landed.  One more save picks up
            # anything recorded since, then report what survived.
            if store is not None:
                store.save()
            raise CampaignInterrupted(
                checkpointed_trials=completed, total_trials=total
            ) from None

        return results
    finally:
        if store is not None:
            store.release_lock()


def _run_inline(
    tasks: Sequence[ChunkTask],
    policy: ExecutionPolicy,
    quarantined: Dict[str, ChunkFailure],
    complete_chunk: Callable[[ChunkTask, Dict[str, Any]], None],
    handle_failure: Callable[[ChunkTask, ChunkFailure], None],
    inc: Callable[..., None],
) -> None:
    """Single-process execution with the same retry/quarantine semantics.

    Timeouts are not enforced here -- an inline trial cannot be preempted --
    which is why hang-style chaos needs ``workers > 1``.
    """
    for task in tasks:
        if task.cell_name in quarantined:
            continue
        current = task
        while True:
            try:
                payload = execute_chunk(current)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                if current.attempt < current.max_retries:
                    inc("runner.retries")
                    current = replace(current, attempt=current.attempt + 1)
                    time.sleep(
                        backoff_delay(current.attempt, policy.backoff_base_s)
                    )
                    continue
                handle_failure(
                    current,
                    ChunkFailure(
                        cell_name=current.cell_name,
                        chunk_index=current.chunk_index,
                        seeds=list(current.seeds),
                        kind="exception",
                        error=type(exc).__name__,
                        message=str(exc),
                        traceback=traceback.format_exc(),
                        attempts=current.attempt + 1,
                    ),
                )
                break
            complete_chunk(current, payload)
            break


# ----------------------------------------------------------------------
# Generic seed fan-out (backs api.run_many(workers=N))
def run_seeds(
    runner: Callable[..., SimulationResult],
    seeds: Iterable[int],
    workers: int = 1,
    chunk_trials: int = DEFAULT_CHUNK_TRIALS,
    trial_timeout_s: Optional[float] = None,
    max_chunk_retries: int = DEFAULT_MAX_CHUNK_RETRIES,
    **kwargs: Any,
) -> TrialAggregate:
    """Fan ``runner`` out over ``seeds`` across supervised workers.

    ``runner`` and ``kwargs`` must be picklable (module-level callables and
    plain data).  For registry-named experiments prefer :func:`run_campaign`,
    whose tasks are always plain JSON-shaped data.  The parallel path rides
    the same supervisor as campaigns (worker-death recovery, per-chunk
    deadlines, bounded retries); a chunk that exhausts its retries raises
    :class:`ExperimentError` -- there is no quarantine at this level.

    Chunks travel back as pickled aggregates (not ``to_dict``), so outputs
    keep their Python types (frozensets, tuples, ...) and the result is
    indistinguishable from a sequential ``run_many``.
    """
    seed_list = [int(seed) for seed in seeds]
    tasks = [
        ChunkTask(
            cell_name="run_seeds",
            chunk_index=index,
            seeds=chunk,
            callable_runner=runner,
            runner_kwargs=kwargs,
            timeout_s=(
                trial_timeout_s * len(chunk) if trial_timeout_s is not None else None
            ),
            max_retries=max_chunk_retries,
        )
        for index, chunk in enumerate(_chunks(seed_list, chunk_trials))
    ]
    parts: Dict[int, TrialAggregate] = {}
    if workers > 1 and len(tasks) > 1:
        errors: List[ChunkFailure] = []
        supervisor = WorkerSupervisor(min(workers, len(tasks)))
        supervisor.run(
            tasks,
            lambda task, aggregate: parts.__setitem__(task.chunk_index, aggregate),
            lambda task, failure: errors.append(failure),
        )
        if errors:
            failure = errors[0]
            raise ExperimentError(
                f"run_seeds chunk {failure.chunk_index} failed after "
                f"{failure.attempts} attempt(s): {failure.kind}: "
                f"{failure.error}: {failure.message}"
            )
    else:
        for task in tasks:
            parts[task.chunk_index] = execute_chunk(task)
    merged = TrialAggregate.empty()
    for index in sorted(parts):
        merged = merged.merge(parts[index])
    return merged
