"""Campaign orchestration: sequential or process-parallel trial execution.

The runner turns a :class:`~repro.experiments.spec.CampaignSpec` into
:class:`~repro.core.results.TrialAggregate` statistics, one per cell.  Trials
are grouped into fixed-size *chunks*; each chunk is executed by a worker (a
``multiprocessing`` pool process, or inline when ``workers <= 1``) and the
per-chunk aggregates are merged back **in chunk order**.

Determinism: every trial is seeded explicitly from the spec's seed list and
workers carry no other randomness, so the merged statistics are identical
whatever the worker count or completion order -- a parallel campaign is
byte-for-byte the same artifact as a sequential one.  This is asserted by
``tests/experiments/test_runner.py``.
"""

from __future__ import annotations

import inspect
import multiprocessing
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.results import TrialAggregate
from repro.errors import ExperimentError
from repro.experiments.registry import RUNNERS, build_behavior_factory, build_scheduler
from repro.experiments.spec import CampaignSpec, ExperimentSpec
from repro.experiments.store import ResultStore
from repro.net.runtime import SimulationResult

#: Seeds per dispatched chunk.  Small enough to keep a pool busy and progress
#: lively, large enough to amortise task pickling.
DEFAULT_CHUNK_TRIALS = 8

ProgressCallback = Callable[["CampaignProgress"], None]


@dataclass
class CampaignProgress:
    """Progress snapshot passed to the runner's progress callback."""

    cell: str
    cell_completed: int
    cell_trials: int
    completed: int
    total: int
    resumed: bool = False


def _chunks(seeds: Sequence[int], size: int) -> List[List[int]]:
    return [list(seeds[start : start + size]) for start in range(0, len(seeds), size)]


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits ``sys.path``); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# Trial execution (shared by the inline and pooled paths)
class CellExecutor:
    """One cell's trials with all per-trial setup amortised across a chunk.

    ``run_trial`` used to resolve registry names, build behaviour factories
    and (for scenarios) re-validate the whole spec *per seed*; for the short
    trials the campaign layer exists to mass-produce, that setup rivals the
    simulation itself.  An executor does it once per chunk:

    * runner lookup, parameter normalisation and behaviour factories are
      resolved in ``__init__`` and reused for every seed;
    * when the cell names a :mod:`scenario <repro.scenarios>`, its
      :class:`~repro.scenarios.engine.ScenarioRuntime` (selector resolution,
      scale preset, static corruption factories) is built once -- only the
      per-trial :class:`~repro.scenarios.engine.ScenarioDirector` is fresh
      per seed;
    * one shared session-intern table is passed to every trial's network, so
      the session tuples of identically-shaped trials are allocated once per
      chunk instead of once per trial.

    Schedulers and directors hold per-run state, so those are still built
    fresh for every seed; everything an executor shares between trials is
    read-only during a run, which is what keeps chunk results byte-identical
    to the one-executor-per-trial path (and therefore parallel campaigns
    byte-identical to sequential ones).
    """

    def __init__(self, cell: ExperimentSpec) -> None:
        cell.validate()
        self.cell = cell
        self.runner = RUNNERS.get(cell.protocol)
        #: Shared across this executor's trials (same topology => same tuples).
        self.session_table: Dict[Any, Any] = {}
        self.scenario_runtime = None
        if cell.scenario is not None:
            # Imported lazily: repro.scenarios builds on the experiments
            # registry, so a module-level import would be circular.
            from repro.scenarios.engine import ScenarioRuntime
            from repro.scenarios.library import get_scenario

            self.scenario_runtime = ScenarioRuntime(
                get_scenario(cell.scenario), n=cell.n
            )
            kwargs = RUNNERS.normalize(
                cell.protocol, self.scenario_runtime.runner_kwargs(cell.params)
            )
            if self.scenario_runtime.prime is not None and "prime" not in kwargs:
                kwargs["prime"] = self.scenario_runtime.prime
            corruptions = self.scenario_runtime.static_corruptions()
        else:
            kwargs = RUNNERS.normalize(cell.protocol, cell.params)
            corruptions = {}
        for pid, spec in sorted(cell.adversary.items()):
            corruptions[pid] = build_behavior_factory(spec)
        self.kwargs = kwargs
        self.corruptions = corruptions
        self._extras = self._supported_extras()
        #: Safety-invariant checking (repro.scenarios.invariants): the cell
        #: may force it either way; the default is on exactly for scenario
        #: cells, whose adversarial grids are where silent safety breaks
        #: would otherwise aggregate into garbage statistics.
        self.check_invariants = (
            cell.invariants
            if cell.invariants is not None
            else cell.scenario is not None
        )

    def _supported_extras(self) -> frozenset:
        """Which optional runner kwargs (director/session table) to forward.

        Registered runners are only required to take ``n`` / ``seed`` /
        ``scheduler`` / ``corruptions``; the in-tree :mod:`repro.core.api`
        runners all take the scenario/batching extras, but a downstream
        registry entry may not, and must keep working without them.
        """
        try:
            parameters = inspect.signature(self.runner).parameters
        except (TypeError, ValueError):  # builtins / C callables
            return frozenset()
        if any(p.kind is p.VAR_KEYWORD for p in parameters.values()):
            return frozenset({"director", "session_table"})
        supported = frozenset(
            name for name in ("director", "session_table") if name in parameters
        )
        if self.cell.scenario is not None and "director" not in supported:
            raise ExperimentError(
                f"cell {self.cell.name!r}: runner {self.cell.protocol!r} does not "
                f"accept a scenario director; scenarios need a director-aware runner"
            )
        return supported

    def _build_scheduler(self):
        if self.cell.scheduler is not None:
            return build_scheduler(self.cell.scheduler)
        if self.scenario_runtime is not None:
            return self.scenario_runtime.build_scheduler()
        return None

    def run(self, seed: int) -> SimulationResult:
        """Run the trial for one seed (schedulers/directors built fresh)."""
        call: Dict[str, Any] = dict(self.kwargs)
        if "session_table" in self._extras:
            call["session_table"] = self.session_table
        if self.scenario_runtime is not None:
            call["director"] = self.scenario_runtime.build_director()
        result = self.runner(
            n=self.cell.n,
            seed=seed,
            scheduler=self._build_scheduler(),
            corruptions=self.corruptions or None,
            **call,
        )
        if self.check_invariants:
            # Imported lazily, like the scenario runtime above.
            from repro.scenarios.invariants import assert_invariants

            assert_invariants(
                result,
                self.cell.protocol,
                context=f"cell {self.cell.name!r} seed {seed}",
                params=self.kwargs,
            )
        return result


def run_trial(cell: ExperimentSpec, seed: int) -> SimulationResult:
    """Run one trial of ``cell``: resolve registry names, build, simulate.

    One-shot convenience wrapper; loops should build a :class:`CellExecutor`
    once and call :meth:`CellExecutor.run` per seed.
    """
    return CellExecutor(cell).run(seed)


def _run_cell_chunk(task: Tuple[int, Dict[str, Any], List[int]]) -> Tuple[int, Dict[str, Any]]:
    """Worker entry point: run one chunk of one cell's seeds.

    Takes and returns plain picklable data (the cell as a dict, the aggregate
    as a dict) so it works under both fork and spawn start methods.  The
    sequential path calls this exact function inline, which is what makes
    parallel and sequential campaigns bit-identical by construction.
    """
    index, cell_dict, seeds = task
    executor = CellExecutor(ExperimentSpec.from_dict(cell_dict))
    aggregate = TrialAggregate()
    for seed in seeds:
        aggregate.add(executor.run(seed))
    return index, aggregate.to_transport_dict()


def run_cell(cell: ExperimentSpec, chunk_trials: int = DEFAULT_CHUNK_TRIALS) -> TrialAggregate:
    """Run every trial of one cell sequentially and return its aggregate."""
    cell.validate()
    merged = TrialAggregate.empty()
    cell_dict = cell.to_dict()
    for index, chunk in enumerate(_chunks(cell.seeds, chunk_trials)):
        _, chunk_dict = _run_cell_chunk((index, cell_dict, chunk))
        merged = merged.merge(TrialAggregate.from_transport_dict(chunk_dict))
    return merged


# ----------------------------------------------------------------------
# Campaign orchestration
def run_campaign(
    campaign: CampaignSpec,
    workers: int = 1,
    store: Optional[ResultStore] = None,
    progress: Optional[ProgressCallback] = None,
    chunk_trials: int = DEFAULT_CHUNK_TRIALS,
) -> Dict[str, TrialAggregate]:
    """Run (or resume) a campaign and return ``{cell name: aggregate}``.

    Args:
        campaign: the declarative spec; validated before anything runs.
        workers: process-pool size; ``<= 1`` runs inline in this process.
        store: optional :class:`ResultStore`.  Cells whose results are
            already persisted (matching spec hash) are *not* re-run; freshly
            completed cells are persisted -- and the store saved -- as soon
            as their last chunk lands, so an interrupted campaign resumes at
            cell granularity.
        progress: optional callback invoked after every completed chunk (and
            once per resumed cell) with a :class:`CampaignProgress`.
        chunk_trials: seeds per dispatched chunk.
    """
    campaign.validate()
    for cell in campaign.cells:
        # Fail fast on unknown registry/scenario names and unresolvable
        # selectors: building the executor performs every static resolution
        # a worker would, before any trial runs.
        CellExecutor(cell)
        build_scheduler(cell.scheduler)
    if store is not None:
        store.bind_campaign(campaign.name)

    total = campaign.trials
    completed = 0
    results: Dict[str, TrialAggregate] = {}

    # Partition cells into resumed and pending, then chunk the pending ones.
    tasks: List[Tuple[int, Dict[str, Any], List[int]]] = []
    task_cell: Dict[int, ExperimentSpec] = {}
    cell_chunks: Dict[str, Dict[int, Optional[Dict[str, Any]]]] = {}
    cell_done: Dict[str, int] = {}
    for cell in campaign.cells:
        if store is not None and store.has_cell(cell.name, cell.spec_hash()):
            results[cell.name] = store.get(cell.name)
            completed += cell.trials
            if progress is not None:
                progress(
                    CampaignProgress(
                        cell=cell.name,
                        cell_completed=cell.trials,
                        cell_trials=cell.trials,
                        completed=completed,
                        total=total,
                        resumed=True,
                    )
                )
            continue
        cell_dict = cell.to_dict()
        cell_chunks[cell.name] = {}
        cell_done[cell.name] = 0
        for chunk in _chunks(cell.seeds, chunk_trials):
            index = len(tasks)
            tasks.append((index, cell_dict, chunk))
            task_cell[index] = cell
            cell_chunks[cell.name][index] = None

    def complete_chunk(index: int, aggregate_dict: Dict[str, Any]) -> None:
        nonlocal completed
        cell = task_cell[index]
        chunks = cell_chunks[cell.name]
        chunks[index] = aggregate_dict
        chunk_len = len(tasks[index][2])
        cell_done[cell.name] += chunk_len
        completed += chunk_len
        if all(part is not None for part in chunks.values()):
            merged = TrialAggregate.empty()
            for task_index in sorted(chunks):
                merged = merged.merge(TrialAggregate.from_transport_dict(chunks[task_index]))
            results[cell.name] = merged
            if store is not None:
                store.put(cell.name, cell.spec_hash(), merged)
                store.save()
        if progress is not None:
            progress(
                CampaignProgress(
                    cell=cell.name,
                    cell_completed=cell_done[cell.name],
                    cell_trials=cell.trials,
                    completed=completed,
                    total=total,
                )
            )

    if workers > 1 and len(tasks) > 1:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            for index, aggregate_dict in pool.imap_unordered(_run_cell_chunk, tasks):
                complete_chunk(index, aggregate_dict)
    else:
        for task in tasks:
            index, aggregate_dict = _run_cell_chunk(task)
            complete_chunk(index, aggregate_dict)

    return results


# ----------------------------------------------------------------------
# Generic seed fan-out (backs api.run_many(workers=N))
def _run_seeds_chunk(
    task: Tuple[int, Callable[..., SimulationResult], List[int], Dict[str, Any]],
) -> Tuple[int, TrialAggregate]:
    index, runner, seeds, kwargs = task
    aggregate = TrialAggregate()
    for seed in seeds:
        aggregate.add(runner(seed=seed, **kwargs))
    # Unlike the campaign path, chunks travel back as pickled aggregates (not
    # to_dict), so outputs keep their Python types (frozensets, tuples, ...)
    # and the result is indistinguishable from a sequential run_many.
    return index, aggregate


def run_seeds(
    runner: Callable[..., SimulationResult],
    seeds: Iterable[int],
    workers: int = 1,
    chunk_trials: int = DEFAULT_CHUNK_TRIALS,
    **kwargs: Any,
) -> TrialAggregate:
    """Fan ``runner`` out over ``seeds`` across a process pool.

    ``runner`` and ``kwargs`` must be picklable (module-level callables and
    plain data).  For registry-named experiments prefer :func:`run_campaign`,
    whose tasks are always plain JSON-shaped data.
    """
    seed_list = [int(seed) for seed in seeds]
    tasks = [
        (index, runner, chunk, kwargs)
        for index, chunk in enumerate(_chunks(seed_list, chunk_trials))
    ]
    parts: Dict[int, TrialAggregate] = {}
    if workers > 1 and len(tasks) > 1:
        context = _pool_context()
        with context.Pool(processes=min(workers, len(tasks))) as pool:
            for index, aggregate in pool.imap_unordered(_run_seeds_chunk, tasks):
                parts[index] = aggregate
    else:
        for task in tasks:
            index, aggregate = _run_seeds_chunk(task)
            parts[index] = aggregate
    merged = TrialAggregate.empty()
    for index in sorted(parts):
        merged = merged.merge(parts[index])
    return merged
