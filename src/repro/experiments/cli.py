"""Command-line front end for experiment campaigns.

Usage (also installed as the ``repro-experiments`` console script)::

    python -m repro.experiments run campaign.json --workers 4
    python -m repro.experiments report campaign.results.json
    python -m repro.experiments validate campaign.json
    python -m repro.experiments ablate --quick --json ablation.json

``run`` executes (or resumes) a campaign and persists per-cell aggregates to
the ``--out`` JSON file; cells already present in the file with a matching
spec hash are skipped, so re-running after an interruption only pays for the
missing cells.  ``report`` pretty-prints a results file (``--format
text|markdown|json``; ``--campaign SPEC`` additionally machine-checks the
paper claims and fails the exit status when one is refuted); ``--drop CELL``
removes one cell first (the next ``run`` recomputes exactly that cell).
``ablate`` expands the factor registry of :mod:`repro.analysis.ablation`
into a one-factor-out (or factorial) campaign, prints the per-factor
contribution table and the claims report, and exits non-zero when a claim
fails -- the CI claims gate.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.errors import ExperimentError, ServiceError
from repro.experiments.registry import BEHAVIORS, FAULTS, RUNNERS, SCHEDULERS
from repro.experiments.runner import (
    DEFAULT_CHUNK_TRIALS,
    CampaignInterrupted,
    CampaignProgress,
    run_campaign,
)
from repro.experiments.report import (
    SUMMARY_HEADER,
    build_report,
    render_report,
    summary_rows as _summary_rows,
)
from repro.experiments.spec import CampaignSpec, ExecutionPolicy, FaultSpec
from repro.experiments.store import ResultStore

REPORT_FORMATS = ("text", "markdown", "json")


def _print_table(header: Sequence[str], rows: Iterable[Sequence[Any]]) -> None:
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(column) for column in header]
    for row in rows:
        widths = [max(width, len(cell)) for width, cell in zip(widths, row)]
    line = "  ".join(name.ljust(width) for name, width in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))


def _default_out(campaign_path: Path) -> Path:
    return campaign_path.with_name(campaign_path.stem + ".results.json")


# ----------------------------------------------------------------------
def _parse_int_list(text: Optional[str]) -> Optional[List[int]]:
    """``"0,2,5"`` -> ``[0, 2, 5]``; ``None``/``"all"`` -> ``None`` (no filter)."""
    if text is None or text.strip().lower() == "all":
        return None
    try:
        return [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError as exc:
        raise ExperimentError(f"expected a comma-separated int list: {exc}") from None


def _cli_policy(args: argparse.Namespace) -> Optional[ExecutionPolicy]:
    """Execution-policy override from CLI flags (None when no flag given)."""
    policy = ExecutionPolicy(
        trial_timeout_s=args.trial_timeout,
        max_chunk_retries=args.max_chunk_retries,
        fail_fast=True if args.fail_fast else None,
    )
    return policy if policy.to_dict() else None


def _print_failures(failures: Dict[str, Dict[str, Any]]) -> None:
    print("\nquarantined cells:", file=sys.stderr)
    for name, record in sorted(failures.items()):
        print(
            f"  {name}: chunk {record.get('chunk_index')} "
            f"{record.get('kind')} after {record.get('attempts')} attempt(s): "
            f"{record.get('error')}: {record.get('message')}",
            file=sys.stderr,
        )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.obs.metrics import MetricsRegistry

    campaign_path = Path(args.campaign)
    campaign = CampaignSpec.load(campaign_path)
    out_path = Path(args.out) if args.out else _default_out(campaign_path)
    if args.fresh and out_path.exists():
        out_path.unlink()
    store = ResultStore.open(out_path, recover_corrupt=args.recover_corrupt)
    if store.recovered_from is not None:
        print(
            f"warning: {out_path} was corrupt; quarantined to "
            f"{store.recovered_from} and starting fresh",
            file=sys.stderr,
        )

    if args.inject:
        fault = FaultSpec(
            fault=args.inject,
            params={
                "chunks": _parse_int_list(args.inject_chunks),
                "attempts": _parse_int_list(args.inject_attempts),
            },
        )
        for cell in campaign.cells:
            cell.fault = fault

    def report_progress(event: CampaignProgress) -> None:
        if args.quiet:
            return
        state = "resumed" if event.resumed else "ran"
        print(
            f"[{event.completed}/{event.total}] {event.cell}: "
            f"{state} {event.cell_completed}/{event.cell_trials} trials",
            flush=True,
        )

    metrics = MetricsRegistry(queue_depth_every=0, completion_steps=False)
    results = run_campaign(
        campaign,
        workers=args.workers,
        store=store,
        progress=report_progress,
        chunk_trials=args.chunk_trials,
        policy=_cli_policy(args),
        metrics=metrics,
    )
    if not args.quiet:
        print()
        print(f"campaign {campaign.name!r}: {campaign.trials} trials, "
              f"{len(results)} cells -> {out_path}")
        _print_table(
            SUMMARY_HEADER,
            _summary_rows({name: agg.summary() for name, agg in results.items()}),
        )
        supervision = {
            name: value
            for name, value in metrics.counter_values().items()
            if name.startswith("runner.") and value
        }
        if supervision:
            print("supervision: " + ", ".join(
                f"{name.split('.', 1)[1]}: {value}"
                for name, value in sorted(supervision.items())
            ))
    failures = store.failures()
    if failures:
        _print_failures(failures)
        print(
            f"error: {len(failures)} cell(s) quarantined; healthy cells "
            f"completed and were saved -- re-run to retry the quarantined ones",
            file=sys.stderr,
        )
        return 3
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    store = ResultStore.open(Path(args.results))
    if args.drop:
        if not store.delete(args.drop):
            print(f"no cell {args.drop!r} in {args.results}", file=sys.stderr)
            return 1
        store.save()
        print(f"dropped cell {args.drop!r}; the next `run` will recompute it")
        return 0
    results = {name: store.get(name) for name in store.cell_names()}
    claims_report = None
    if args.campaign:
        from repro.analysis.claims import evaluate_claims

        campaign = CampaignSpec.load(Path(args.campaign))
        claims_report = evaluate_claims(campaign, results)
    failures = store.failures()
    payload = build_report(
        store.campaign, results, claims=claims_report, failures=failures or None
    )
    print(render_report(payload, args.format), end="")
    if args.format == "text":
        partial = store.partial_cells()
        if partial:
            print("\nin progress (checkpointed chunks): " + ", ".join(
                f"{name}: {count} chunk(s)" for name, count in sorted(partial.items())
            ))
    if failures:
        _print_failures(failures)
        return 1
    if claims_report is not None and not claims_report.passed:
        print("error: paper claims refuted by the results", file=sys.stderr)
        return 1
    return 0


def _select_factors(names: Optional[str], scenario: Optional[str]) -> List[Any]:
    """Resolve ``--factors a,b`` against the registry (scenario factors too)."""
    from repro.analysis.ablation import OPTIMISATION_FACTORS, scenario_factors

    available = list(OPTIMISATION_FACTORS)
    if scenario is not None:
        available += list(scenario_factors())
    if names is None:
        return available
    by_name = {factor.name: factor for factor in available}
    selected = []
    for name in names.split(","):
        name = name.strip()
        if not name:
            continue
        if name not in by_name:
            raise ExperimentError(
                f"unknown factor {name!r}; available: {', '.join(sorted(by_name))}"
            )
        selected.append(by_name[name])
    if not selected:
        raise ExperimentError("--factors selected no factors")
    return selected


def _cmd_ablate(args: argparse.Namespace) -> int:
    """Build, run and report an ablation campaign; gate on the paper claims.

    ``--quick`` is the CI preset (honest coinflip at n=16, 10 seeds, one
    cell per optimisation factor); ``--biased`` replaces the seed list with
    one seed repeated, a deliberately rigged coin that the bias claim must
    refute -- the smoke test that the claims gate actually fails.  Exit
    status: 0 all claims hold, 1 a claim failed, 3 cells quarantined.
    """
    from repro.analysis.ablation import (
        build_ablation_campaign,
        build_attack_sweep,
        contribution_table,
        sweep_table,
    )
    from repro.analysis.claims import evaluate_claims

    n = args.n if args.n is not None else 16
    seeds_count = args.seeds if args.seeds is not None else 10
    rounds = args.rounds if args.rounds is not None else (3 if args.quick else 2)
    if args.biased:
        # One seed repeated: every trial is the same execution, so the coin
        # lands on one side every time.  At least 16 repeats are needed for
        # the Wilson upper bound on the other side's probability to drop
        # below 1/2 - 0.25 (fewer trials cannot statistically refute the
        # bound, by design of the claim).
        seeds = [args.seed_base] * max(16, 2 * seeds_count)
        factor_arg: Optional[str] = args.factors or ""
    else:
        seeds = list(range(args.seed_base, args.seed_base + seeds_count))
        factor_arg = args.factors
    protocol = args.protocol
    base_params: Dict[str, Any] = {}
    if args.scenario is not None:
        from repro.scenarios.library import get_scenario

        protocol = get_scenario(args.scenario).protocol
    if protocol == "coinflip":
        base_params["rounds"] = rounds
    factors = (
        [] if factor_arg == "" else _select_factors(factor_arg, args.scenario)
    )
    campaign = build_ablation_campaign(
        name=f"ablation-{args.scenario or protocol}-n{n}",
        protocol=protocol,
        n=n,
        seeds=seeds,
        factors=factors,
        mode=args.mode,
        base_params=base_params,
        scenario=args.scenario,
    )

    store = None
    if args.out:
        store = ResultStore.open(Path(args.out))

    def report_progress(event: CampaignProgress) -> None:
        if args.quiet:
            return
        state = "resumed" if event.resumed else "ran"
        print(
            f"[{event.completed}/{event.total}] {event.cell}: "
            f"{state} {event.cell_completed}/{event.cell_trials} trials",
            flush=True,
        )

    failures: Dict[str, Any] = {}
    results = run_campaign(
        campaign,
        workers=args.workers,
        store=store,
        progress=report_progress,
        chunk_trials=args.chunk_trials,
        failures=failures,
    )
    contribution = contribution_table(results, factors) if factors else None

    sweep_rows = None
    if args.sweep:
        sweep_campaign = build_attack_sweep(
            name=f"{campaign.name}-sweep",
            scenarios=[name.strip() for name in args.sweep.split(",") if name.strip()],
            ns=_parse_int_list(args.sweep_ns) or [n],
            seeds=list(range(args.seed_base, args.seed_base + seeds_count)),
        )
        sweep_results = run_campaign(
            sweep_campaign,
            workers=args.workers,
            progress=report_progress,
            chunk_trials=args.chunk_trials,
        )
        sweep_rows = sweep_table(sweep_campaign, sweep_results)
        claims_campaign = CampaignSpec(
            name=campaign.name, cells=campaign.cells + sweep_campaign.cells
        )
        claims_results = dict(results)
        claims_results.update(sweep_results)
    else:
        claims_campaign, claims_results = campaign, results

    claims_report = evaluate_claims(claims_campaign, claims_results)
    payload = build_report(
        campaign.name,
        claims_results,
        contribution=contribution,
        sweep=sweep_rows,
        claims=claims_report,
        failures={name: failure.to_record() for name, failure in failures.items()}
        or None,
    )
    if args.json:
        Path(args.json).write_text(render_report(payload, "json"))
        if not args.quiet:
            print(f"report JSON -> {args.json}")
    if not args.quiet:
        print()
    print(render_report(payload, args.format), end="")
    if failures:
        _print_failures({name: f.to_record() for name, f in failures.items()})
        return 3
    if not claims_report.passed:
        print("error: paper claims refuted by the results", file=sys.stderr)
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Start the beacon service, drive a synthetic load, report and gate.

    The self-contained service harness: boots a sharded
    :class:`~repro.service.frontend.BeaconService`, generates ``--requests``
    deterministic mixed-protocol requests (optionally lacing chaos faults
    via ``--inject``), and verifies every completed response byte-for-byte
    against a cold one-shot rerun unless ``--no-verify``.  Exit status: 0
    healthy, 1 on any divergent response or availability below
    ``--min-availability``.
    """
    import json as _json

    from repro.obs.metrics import MetricsRegistry
    from repro.service.frontend import BeaconService, ServicePolicy
    from repro.service.loadgen import build_requests, run_load

    policy = ServicePolicy(
        shards=args.shards,
        queue_depth=args.queue_depth,
        request_timeout_s=args.timeout,
        max_retries=args.max_retries,
    )
    requests = build_requests(
        args.requests,
        n=args.n,
        protocols=[name.strip() for name in args.protocols.split(",") if name.strip()],
        seed_base=args.seed_base,
        inject=args.inject,
        inject_every=args.inject_every,
    )
    metrics = MetricsRegistry(queue_depth_every=0, completion_steps=False)
    with BeaconService(policy, metrics=metrics) as service:
        report = run_load(service, requests, verify=not args.no_verify)
        dump = service.metrics_dump()
    if not args.quiet:
        print(report.render_text())
        counters = {k: v for k, v in dump["counters"].items() if v}
        print("service: " + ", ".join(
            f"{name.split('.', 1)[1]}: {value}"
            for name, value in sorted(counters.items())
        ))
    if args.metrics_json:
        Path(args.metrics_json).write_text(_json.dumps(dump, indent=2) + "\n")
        if not args.quiet:
            print(f"metrics JSON -> {args.metrics_json}")
    failed = False
    if report.divergent:
        print(
            f"error: {len(report.divergent)} response(s) diverged from the "
            f"cold rerun oracle -- a correctness failure",
            file=sys.stderr,
        )
        failed = True
    if report.availability < args.min_availability:
        print(
            f"error: availability {report.availability:.4f} below the "
            f"--min-availability floor {args.min_availability:g}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _cmd_bench_beacon(args: argparse.Namespace) -> int:
    """Run the beacon perf family and write its ``BENCH_beacon.json``."""
    from benchmarks.perf.harness import run_and_write
    from repro.service import bench as beacon_bench

    print(f"beacon workloads ({'quick' if args.quick else 'full'} mode):")
    results = beacon_bench.run(args.quick)
    run_and_write(
        "beacon service (warm resident executors vs cold one-shot worlds)",
        Path(args.out),
        results,
        args.quick,
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.scenarios.library import get_scenario

    campaign = CampaignSpec.load(Path(args.campaign))
    campaign.validate()
    unknown: List[str] = []
    for cell in campaign.cells:
        if cell.protocol not in RUNNERS:
            unknown.append(f"cell {cell.name!r}: unknown protocol {cell.protocol!r}")
        for spec in cell.adversary.values():
            if spec.behavior not in BEHAVIORS:
                unknown.append(f"cell {cell.name!r}: unknown behavior {spec.behavior!r}")
        if cell.scheduler is not None and cell.scheduler.scheduler not in SCHEDULERS:
            unknown.append(
                f"cell {cell.name!r}: unknown scheduler {cell.scheduler.scheduler!r}"
            )
        if cell.scenario is not None:
            try:
                # Resolves ablation variants (`base~no-component`) too.
                get_scenario(cell.scenario)
            except ExperimentError as exc:
                unknown.append(f"cell {cell.name!r}: {exc}")
        if cell.fault is not None and cell.fault.fault not in FAULTS:
            unknown.append(f"cell {cell.name!r}: unknown fault {cell.fault.fault!r}")
    if unknown:
        for line in unknown:
            print(line, file=sys.stderr)
        return 1
    print(
        f"campaign {campaign.name!r}: {len(campaign.cells)} cells, "
        f"{campaign.trials} trials, ok"
    )
    return 0


def _check_scenarios(args: argparse.Namespace) -> int:
    """Run scenarios trace-free and evaluate every safety invariant.

    The chaos gate: each scenario runs ``--check-seeds`` trials in the
    campaign throughput configuration (tracing off) and every
    :mod:`repro.scenarios.invariants` check -- budget, termination, step
    bound, agreement, validity -- is evaluated on each result.  Any
    violation is printed and the command exits non-zero, so CI fails loudly
    the moment an adversarial scenario breaks a guaranteed property.
    """
    from repro.scenarios.engine import ScenarioRuntime, run_scenario
    from repro.scenarios.invariants import check_scenario_result
    from repro.scenarios.library import get_scenario, scenario_names

    names = [args.run] if args.run else scenario_names()
    seeds = list(range(args.seed, args.seed + max(1, args.check_seeds)))
    violations_total = 0
    trials = 0
    for name in names:
        spec = get_scenario(name)
        n = ScenarioRuntime(spec, n=args.n).n
        bad: List[str] = []
        steps = []
        for seed in seeds:
            result = run_scenario(spec, n=n, seed=seed, tracing=False)
            trials += 1
            steps.append(result.steps)
            for violation in check_scenario_result(spec, result):
                bad.append(f"seed={seed} {violation}")
        status = "OK" if not bad else f"{len(bad)} VIOLATION(S)"
        print(
            f"{name:<26} n={n:<3} seeds={seeds[0]}..{seeds[-1]} "
            f"steps={max(steps):<7} {status}"
        )
        for line in bad:
            print(f"  {line}")
        violations_total += len(bad)
    verdict = (
        "all invariants hold"
        if not violations_total
        else f"{violations_total} invariant violation(s)"
    )
    print(f"\n{len(names)} scenarios x {len(seeds)} seeds = {trials} trials: {verdict}")
    return 0 if not violations_total else 1


def _cmd_scenarios(args: argparse.Namespace) -> int:
    """List, validate, inspect or smoke-run the named scenario library."""
    from repro.scenarios.engine import ScenarioRuntime, run_scenario
    from repro.scenarios.library import get_scenario, scenario_names

    if args.show:
        print(get_scenario(args.show).to_json(), end="")
        return 0

    if args.check:
        if args.smoke or args.no_tracing or args.trace_jsonl or args.timeline:
            print(
                "error: --check runs its own trace-free trials; it only "
                "combines with --run/--n/--seed/--check-seeds",
                file=sys.stderr,
            )
            return 2
        return _check_scenarios(args)

    wants_sinks = bool(args.trace_jsonl or args.timeline)
    if wants_sinks and not (args.run or args.smoke):
        print("error: --trace-jsonl/--timeline require --run or --smoke",
              file=sys.stderr)
        return 2
    if wants_sinks and args.no_tracing:
        print("error: --trace-jsonl/--timeline need tracing; drop --no-tracing",
              file=sys.stderr)
        return 2

    names = [args.run] if args.run else scenario_names()
    if args.run or args.smoke:
        for name in names:
            spec = get_scenario(name)
            # The runtime owns n-resolution (explicit --n beats the scale
            # preset beats the smoke default); report the n it resolved.
            n = ScenarioRuntime(spec, n=args.n).n
            sinks: List[Any] = []
            jsonl_sink = None
            timeline = None
            if args.trace_jsonl:
                from repro.obs.sinks import JsonlSink

                # One file per scenario when smoking the whole library.
                path = Path(args.trace_jsonl)
                if len(names) > 1:
                    path = path.with_name(f"{path.stem}.{name}{path.suffix}")
                jsonl_sink = JsonlSink(path)
                sinks.append(jsonl_sink)
            if args.timeline:
                from repro.obs.timeline import TimelineBuilder

                timeline = TimelineBuilder()
                sinks.append(timeline)
            result = run_scenario(
                spec,
                n=n,
                seed=args.seed,
                tracing=not args.no_tracing,
                sinks=sinks or None,
            )
            status = (
                "DISAGREED" if result.disagreement else f"agreed={result.agreed_value!r}"
            )
            print(
                f"{name:<26} n={n:<3} seed={args.seed} "
                f"steps={result.steps:<7} {status}"
            )
            if jsonl_sink is not None:
                print(f"  trace: {jsonl_sink.path} ({jsonl_sink.events_written} events)")
            if timeline is not None:
                out = Path(args.timeline)
                if len(names) > 1:
                    out = out.with_name(f"{out.stem}.{name}{out.suffix}")
                if args.timeline_format == "chrome":
                    import json as _json

                    out.write_text(
                        _json.dumps(timeline.to_chrome_json(), indent=2, sort_keys=True)
                        + "\n"
                    )
                else:
                    # render_text() is newline-terminated and byte-identical
                    # to an offline `python -m repro.obs timeline` rebuild.
                    out.write_text(timeline.render_text())
                print(f"  timeline: {out} ({args.timeline_format})")
        return 0

    rows = []
    for name in names:
        spec = get_scenario(name)
        spec.validate()  # registry entries are validated on registration; recheck
        roundtrip = type(spec).from_json(spec.to_json())
        if roundtrip.to_dict() != spec.to_dict():
            print(f"scenario {name!r} does not round-trip through JSON", file=sys.stderr)
            return 1
        plan = spec.corruption
        rows.append(
            (
                name,
                spec.protocol,
                spec.scale or "-",
                plan.budget if plan.budget is not None else "t",
                f"{len(plan.static)}s/{len(plan.adaptive)}a/{len(spec.timeline)}f",
                spec.scheduler.scheduler if spec.scheduler else "-",
                spec.description,
            )
        )
    _print_table(
        ("scenario", "protocol", "scale", "budget", "plan", "scheduler", "description"),
        rows,
    )
    print(f"\n{len(rows)} scenarios, all valid and JSON-round-trippable")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Run, resume and report declarative experiment campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="run (or resume) a campaign")
    run_parser.add_argument("campaign", help="path to a campaign JSON spec")
    run_parser.add_argument(
        "--out", help="results JSON path (default: <campaign>.results.json)"
    )
    run_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1)"
    )
    run_parser.add_argument(
        "--chunk-trials",
        type=int,
        default=DEFAULT_CHUNK_TRIALS,
        help=f"seeds per dispatched chunk (default: {DEFAULT_CHUNK_TRIALS})",
    )
    run_parser.add_argument(
        "--fresh", action="store_true", help="discard existing results instead of resuming"
    )
    run_parser.add_argument("--quiet", action="store_true", help="suppress progress output")
    run_parser.add_argument(
        "--trial-timeout", type=float, default=None, metavar="S",
        help="per-trial wall-clock budget; a chunk past timeout x chunk-size "
             "is killed and retried (needs --workers > 1)",
    )
    run_parser.add_argument(
        "--max-chunk-retries", type=int, default=None, metavar="N",
        help="re-dispatches of a failed/timed-out chunk before its cell is "
             "quarantined (default: 2)",
    )
    run_parser.add_argument(
        "--fail-fast", action="store_true",
        help="abort the campaign on the first quarantined cell instead of "
             "completing the healthy ones",
    )
    run_parser.add_argument(
        "--recover-corrupt", action="store_true",
        help="if the --out file is corrupt/truncated, quarantine it to "
             "<out>.corrupt and start fresh instead of failing",
    )
    run_parser.add_argument(
        "--inject", metavar="FAULT", default=None,
        help=f"chaos: inject a named worker fault into every cell "
             f"({', '.join(FAULTS.names())})",
    )
    run_parser.add_argument(
        "--inject-chunks", metavar="I,J,...", default=None,
        help="chunk indices the injected fault hits (default: all)",
    )
    run_parser.add_argument(
        "--inject-attempts", metavar="I,J,...", default="0",
        help="dispatch attempts the injected fault hits "
             "('all' = every attempt; default: 0, so retries recover)",
    )
    run_parser.set_defaults(handler=_cmd_run)

    report_parser = sub.add_parser("report", help="summarise a results file")
    report_parser.add_argument("results", help="path to a results JSON file")
    report_parser.add_argument(
        "--drop", metavar="CELL", help="delete one cell's result (forces recompute)"
    )
    report_parser.add_argument(
        "--format", choices=REPORT_FORMATS, default="text",
        help="output format (default: text; json follows the schema in "
             "repro.obs.schema and validates with validate_report)",
    )
    report_parser.add_argument(
        "--campaign", metavar="SPEC", default=None,
        help="campaign JSON the results came from; evaluates the machine-"
             "checked paper claims against the aggregates and exits 1 when "
             "any claim is refuted",
    )
    report_parser.set_defaults(handler=_cmd_report)

    ablate_parser = sub.add_parser(
        "ablate",
        help="run a factor-ablation campaign, print the per-factor "
             "contribution table and machine-check the paper claims",
    )
    ablate_parser.add_argument(
        "--quick", action="store_true",
        help="CI preset: honest coinflip, n=16, 10 seeds, 3 rounds, "
             "one-factor-out over every optimisation factor",
    )
    ablate_parser.add_argument(
        "--biased", action="store_true",
        help="deliberately rigged run (one seed repeated) that the coin-bias "
             "claim must refute; used by CI to prove the gate fails non-zero",
    )
    ablate_parser.add_argument(
        "--mode", choices=("one-out", "factorial"), default="one-out",
        help="grid expansion: baseline + one cell per factor (default) or "
             "the full 2^k factorial",
    )
    ablate_parser.add_argument(
        "--protocol", default="coinflip",
        help="runner to ablate (default: coinflip; ignored with --scenario)",
    )
    ablate_parser.add_argument(
        "--n", type=int, default=None, help="party count (default: 16)"
    )
    ablate_parser.add_argument(
        "--seeds", type=int, default=None,
        help="trials per cell (default: 10; keep <= 11 so an honest coin "
             "that happens to land one-sided is not statistically refuted)",
    )
    ablate_parser.add_argument(
        "--seed-base", type=int, default=0, help="first seed (default: 0)"
    )
    ablate_parser.add_argument(
        "--rounds", type=int, default=None,
        help="coinflip rounds (default: 3 with --quick, else 2)",
    )
    ablate_parser.add_argument(
        "--factors", metavar="A,B,...", default=None,
        help="comma-separated factor subset (default: every optimisation "
             "factor, plus scenario-component factors with --scenario)",
    )
    ablate_parser.add_argument(
        "--scenario", metavar="NAME", default=None,
        help="ablate under this attack scenario; its components (scheduler, "
             "corruption, timeline, tamper) become factors via the "
             "~no-<component> variants",
    )
    ablate_parser.add_argument(
        "--sweep", metavar="SCEN,SCEN", default=None,
        help="also sweep these scenarios across --sweep-ns and the seed "
             "range, reporting bias/disagreement/message ratios with 95%% CIs",
    )
    ablate_parser.add_argument(
        "--sweep-ns", metavar="N,N", default=None,
        help="party counts for --sweep (default: the ablation --n)",
    )
    ablate_parser.add_argument(
        "--workers", type=int, default=1, help="worker processes (default: 1)"
    )
    ablate_parser.add_argument(
        "--chunk-trials", type=int, default=DEFAULT_CHUNK_TRIALS,
        help=f"seeds per dispatched chunk (default: {DEFAULT_CHUNK_TRIALS})",
    )
    ablate_parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="persist per-cell aggregates to this results JSON (resumable)",
    )
    ablate_parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the structured report JSON here (schema: repro.obs.schema)",
    )
    ablate_parser.add_argument(
        "--format", choices=REPORT_FORMATS, default="text",
        help="stdout format (default: text)",
    )
    ablate_parser.add_argument(
        "--quiet", action="store_true", help="suppress progress output"
    )
    ablate_parser.set_defaults(handler=_cmd_ablate)

    serve_parser = sub.add_parser(
        "serve",
        help="boot the sharded beacon service, drive a synthetic load "
             "(optionally with chaos) and verify responses against cold reruns",
    )
    serve_parser.add_argument(
        "--requests", type=int, default=200,
        help="requests in the synthetic load (default: 200)",
    )
    serve_parser.add_argument(
        "--shards", type=int, default=2, help="resident shard processes (default: 2)"
    )
    serve_parser.add_argument(
        "--n", type=int, default=4, help="party count per request (default: 4)"
    )
    serve_parser.add_argument(
        "--protocols", default="coinflip,weak_coin,aba,fba",
        help="comma-separated protocol mix (default: coinflip,weak_coin,aba,fba)",
    )
    serve_parser.add_argument(
        "--seed-base", type=int, default=1000, help="first request seed (default: 1000)"
    )
    serve_parser.add_argument(
        "--queue-depth", type=int, default=32,
        help="per-shard queue bound before load-shedding (default: 32)",
    )
    serve_parser.add_argument(
        "--timeout", type=float, default=5.0, metavar="S",
        help="per-request deadline; a shard past it is killed and replaced "
             "(default: 5.0)",
    )
    serve_parser.add_argument(
        "--max-retries", type=int, default=2,
        help="re-dispatches of a failed request before a terminal error "
             "(default: 2)",
    )
    serve_parser.add_argument(
        "--inject", metavar="FAULT", default=None,
        help="chaos: lace the load with a shard fault "
             "(raise, exit, sigkill, hang)",
    )
    serve_parser.add_argument(
        "--inject-every", type=int, default=7,
        help="inject the fault into every k-th request (default: 7)",
    )
    serve_parser.add_argument(
        "--no-verify", action="store_true",
        help="skip the byte-identity check of responses against cold reruns",
    )
    serve_parser.add_argument(
        "--min-availability", type=float, default=1.0,
        help="fail when ok/(ok+errors) drops below this (default: 1.0)",
    )
    serve_parser.add_argument(
        "--metrics-json", metavar="PATH", default=None,
        help="write the service metrics dump here (schema: "
             "repro.obs.schema.validate_service_metrics)",
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="suppress the load report"
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    bench_beacon_parser = sub.add_parser(
        "bench-beacon",
        help="time warm resident executors vs cold one-shot worlds and the "
             "end-to-end service; writes BENCH_beacon.json",
    )
    bench_beacon_parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: same workloads, smaller request counts",
    )
    bench_beacon_parser.add_argument(
        "--out", default="BENCH_beacon.json",
        help="output baseline path (default: BENCH_beacon.json)",
    )
    bench_beacon_parser.set_defaults(handler=_cmd_bench_beacon)

    validate_parser = sub.add_parser(
        "validate", help="check a campaign spec without running it"
    )
    validate_parser.add_argument("campaign", help="path to a campaign JSON spec")
    validate_parser.set_defaults(handler=_cmd_validate)

    scenarios_parser = sub.add_parser(
        "scenarios",
        help="list, validate, inspect or smoke-run the named attack scenarios",
    )
    scenarios_parser.add_argument(
        "--run", metavar="NAME", help="run one trial of the named scenario"
    )
    scenarios_parser.add_argument(
        "--smoke", action="store_true", help="run one trial of every scenario"
    )
    scenarios_parser.add_argument(
        "--show", metavar="NAME", help="print one scenario's JSON definition"
    )
    scenarios_parser.add_argument(
        "--check", action="store_true",
        help="run trace-free trials of every scenario (or just --run NAME) "
             "and fail on any safety-invariant violation",
    )
    scenarios_parser.add_argument(
        "--check-seeds", type=int, default=2,
        help="trials per scenario under --check, seeded from --seed "
             "(default: 2)",
    )
    scenarios_parser.add_argument(
        "--n", type=int, default=None,
        help="party-count override (default: the scenario's scale preset, or 4)",
    )
    scenarios_parser.add_argument(
        "--seed", type=int, default=0, help="trial seed (default: 0)"
    )
    scenarios_parser.add_argument(
        "--no-tracing", action="store_true",
        help="disable trace hooks (the campaign throughput configuration)",
    )
    scenarios_parser.add_argument(
        "--trace-jsonl", metavar="PATH",
        help="stream the trial's trace events to a JSONL file "
             "(validate with `python -m repro.obs validate PATH`)",
    )
    scenarios_parser.add_argument(
        "--timeline", metavar="PATH",
        help="write a per-session timeline of the trial to PATH",
    )
    scenarios_parser.add_argument(
        "--timeline-format", choices=("text", "chrome"), default="text",
        help="timeline output format: human-readable text or Chrome "
             "tracing JSON for chrome://tracing (default: text)",
    )
    scenarios_parser.set_defaults(handler=_cmd_scenarios)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ExperimentError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CampaignInterrupted as exc:
        # Workers were torn down and completed chunks flushed before the
        # runner re-raised; report exactly what is resumable.
        print(
            f"\ninterrupted; {exc.checkpointed_trials}/{exc.total_trials} "
            f"trials checkpointed -- re-run to resume",
            file=sys.stderr,
        )
        return 130
    except KeyboardInterrupt:
        # Completed cells are already persisted; re-running resumes there.
        print("\ninterrupted; completed cells were saved -- re-run to resume",
              file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
