"""Deterministic retry backoff shared by every supervised execution plane.

Both the campaign supervisor (:mod:`repro.experiments.supervisor`) and the
beacon service front-end (:mod:`repro.service.frontend`) re-dispatch failed
work after an exponential delay.  The schedule lives here, once, as a pure
function of the attempt number -- no jitter, no clock reads -- so retry
timing is reproducible, testable and identical across the two planes:
``base``, ``2*base``, ``4*base``, ... capped at :data:`BACKOFF_CAP_S`.
"""

from __future__ import annotations

#: Default base of the retry backoff schedule (seconds).
DEFAULT_BACKOFF_BASE_S = 0.05
#: Backoff ceiling: no retry ever waits longer than this.
BACKOFF_CAP_S = 2.0


def backoff_delay(attempt: int, base_s: float = DEFAULT_BACKOFF_BASE_S) -> float:
    """Deterministic exponential backoff before dispatch ``attempt`` (>= 1).

    ``min(BACKOFF_CAP_S, base_s * 2**(attempt-1))``; attempts below 1 are
    clamped to the first step so callers may pass a raw retry counter.
    """
    return min(BACKOFF_CAP_S, base_s * (2 ** max(0, attempt - 1)))
