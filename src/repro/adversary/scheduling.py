"""Adversarial scheduling strategies used by the experiments.

The scheduler *is* the asynchronous adversary's second lever (besides
corrupting parties): it decides delivery order.  The strategies here compose
the primitives from :mod:`repro.net.scheduler` into the named attacks the
benchmarks use.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.net.message import Message
from repro.net.scheduler import (
    DelayScheduler,
    PartitionScheduler,
    RandomScheduler,
    Scheduler,
    TargetedScheduler,
)


def isolate_party(victim: int, max_delay_steps: Optional[int] = None) -> Scheduler:
    """Starve all traffic to and from ``victim`` for as long as possible.

    The classic "slow party" adversary: the victim is effectively partitioned
    until every other message has been delivered.  Protocols with optimal
    resilience must terminate without the victim (it is indistinguishable from
    a crashed party), then let it catch up.
    """
    return DelayScheduler(
        lambda message: victim in (message.sender, message.receiver),
        max_delay_steps=max_delay_steps,
    )


def favour_parties(favoured: Iterable[int]) -> Scheduler:
    """Deliver traffic among ``favoured`` parties first (rushing adversary).

    This gives the favoured coalition a head start in every protocol phase,
    which is how an adversary maximises its information advantage before the
    slow honest parties contribute.
    """
    favoured_set = set(favoured)

    def priority(message: Message) -> float:
        inside = message.sender in favoured_set and message.receiver in favoured_set
        return 0.0 if inside else 1.0

    return TargetedScheduler(priority)


def split_brain(
    group_a: Iterable[int], group_b: Iterable[int], duration: int
) -> Scheduler:
    """Partition the two groups for ``duration`` deliveries, then heal."""
    return PartitionScheduler(group_a, group_b, duration)


def delay_protocol(root: str, max_delay_steps: Optional[int] = None) -> Scheduler:
    """Starve all messages belonging to one top-level protocol session.

    Used to check that protocols are robust to arbitrary interleaving between
    concurrent protocol instances (e.g. delaying every CommonSubset message
    until the SVSS layer has gone quiet).
    """
    return DelayScheduler(
        lambda message: message.root == root, max_delay_steps=max_delay_steps
    )


def random_scheduler() -> Scheduler:
    """The default fair-but-unpredictable scheduler."""
    return RandomScheduler()
