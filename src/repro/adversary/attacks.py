"""Protocol-specific Byzantine attacks used by the experiments.

These behaviours target the SVSS / CoinFlip / FBA stack:

* :class:`WithholdingDealerBehavior` -- runs the protocols honestly but, when
  acting as an SVSS dealer, withholds the row of selected victims.  Attacks
  liveness: the victims must recover their rows from other parties' points
  (exercised by E7), otherwise CoinFlip would deadlock.
* :class:`BadShareBehavior` -- runs honestly but corrupts the rows it sends
  during SVSS reconstruction.  Attacks binding: the corruption is either
  detected (the sender gets shunned, at most once per victim) or harmless.
* :class:`DeterministicValueDealer` -- deals the constant bit ``0`` instead of
  a random bit in every CoinFlip iteration.  The hiding property implies this
  cannot bias the XOR of the iteration coin, which E1 verifies.
* :class:`EquivocatingACastSender` -- sends different values to different
  halves of the parties in its own A-Cast (attacks FBA validity; reliable
  broadcast must prevent honest parties from delivering different values).
* :class:`FBAValueInjector` -- honest protocol execution with a chosen input
  value, used to measure how often the adversary's value wins FBA's fair
  choice (Theorem 4.5 bounds this by 1/2).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Set, Tuple

from repro.adversary.behaviors import Behavior, HonestButMutatingBehavior
from repro.net.message import Message, SessionId


class WithholdingDealerBehavior(HonestButMutatingBehavior):
    """Honest execution, except ROW messages to ``victims`` are dropped."""

    def __init__(self, victims: Iterable[int]) -> None:
        self.victims: Set[int] = set(victims)
        super().__init__(self._mutate)

    def _mutate(
        self, receiver: int, session: SessionId, payload: tuple
    ) -> Optional[Tuple[int, SessionId, tuple]]:
        if payload and payload[0] == "ROW" and receiver in self.victims:
            return None
        return receiver, session, payload


class BadShareBehavior(HonestButMutatingBehavior):
    """Honest execution, except reconstruction rows sent to ``victims`` are corrupted.

    The corrupted row still has the right degree, so it can only be caught by
    the cross-point check -- exactly the check that triggers shunning.
    """

    def __init__(self, victims: Optional[Iterable[int]] = None, offset: int = 1) -> None:
        self.victims: Optional[Set[int]] = set(victims) if victims is not None else None
        self.offset = offset
        super().__init__(self._mutate)

    def _mutate(
        self, receiver: int, session: SessionId, payload: tuple
    ) -> Optional[Tuple[int, SessionId, tuple]]:
        if payload and payload[0] == "RECROW":
            if self.victims is None or receiver in self.victims:
                coefficients = list(payload[1])
                if coefficients:
                    coefficients[0] = coefficients[0] + self.offset
                return receiver, session, ("RECROW", tuple(coefficients))
        return receiver, session, payload


class PointCorruptingBehavior(HonestButMutatingBehavior):
    """Honest execution, except cross-check POINT values are perturbed.

    During the share phase this prevents the adversary from counting towards
    other parties' consistency quorums; honest protocols must still terminate
    because ``n - t`` honest parties suffice.
    """

    def __init__(self, offset: int = 1) -> None:
        self.offset = offset
        super().__init__(self._mutate)

    def _mutate(
        self, receiver: int, session: SessionId, payload: tuple
    ) -> Optional[Tuple[int, SessionId, tuple]]:
        if payload and payload[0] == "POINT" and isinstance(payload[1], int):
            return receiver, session, ("POINT", payload[1] + self.offset)
        return receiver, session, payload


class DeterministicValueDealer(HonestButMutatingBehavior):
    """Runs honestly but its own random bits are all forced to ``value``.

    Implemented by rigging the party's randomness source rather than its
    messages: every ``randrange(2)`` call returns ``value``.  Secret-sharing
    polynomials remain random, so the SVSS layer still functions; only the
    dealt coin bits are biased.
    """

    def __init__(self, value: int = 0) -> None:
        self.value = 1 if value else 0
        super().__init__(lambda receiver, session, payload: (receiver, session, payload))

    def on_attach(self) -> None:
        super().on_attach()
        assert self.process is not None
        original = self.process.rng.randrange
        forced = self.value

        def rigged_randrange(start: int, stop: Optional[int] = None, step: int = 1) -> int:
            if stop is None and start == 2:
                return forced
            if stop is None:
                return original(start)
            return original(start, stop, step)

        self.process.rng.randrange = rigged_randrange  # type: ignore[method-assign]


class SplitBrainEquivocator(HonestButMutatingBehavior):
    """Runs honestly but perturbs integer payload fields sent to half the parties.

    Receivers with ``pid >= n // 2`` see every trailing integer payload field
    offset by ``offset`` (the message kind tag is preserved); the low half
    sees honest traffic.  This is the generic "tell the two halves different
    stories" equivocation used by the scenario engine's ``equivocate`` fault
    transition: it attacks whatever consistency checks the protocol under
    test runs (SVSS cross-points, BVAL/AUX vote counting, echo quorums)
    without protocol-specific knowledge.
    """

    def __init__(self, offset: int = 1, kinds: Optional[Iterable[str]] = None) -> None:
        self.offset = offset
        self.kinds: Optional[Set[str]] = set(kinds) if kinds is not None else None
        super().__init__(self._mutate)

    def _mutate(
        self, receiver: int, session: SessionId, payload: tuple
    ) -> Optional[Tuple[int, SessionId, tuple]]:
        assert self.process is not None
        if receiver < self.process.params.n // 2 or not payload:
            return receiver, session, payload
        if self.kinds is not None and payload[0] not in self.kinds:
            return receiver, session, payload
        mutated = tuple(
            value + self.offset if isinstance(value, int) and not isinstance(value, bool) else value
            for value in payload[1:]
        )
        return receiver, session, (payload[0],) + mutated


class EquivocatingACastSender(Behavior):
    """A faulty A-Cast sender that sends ``value_low`` to low-numbered parties
    and ``value_high`` to the rest, then follows the protocol's echo rules
    selectively.  Reliable broadcast must ensure honest parties never deliver
    different values (they may deliver nothing)."""

    def __init__(self, session: SessionId, value_low: Any, value_high: Any) -> None:
        super().__init__()
        self.session = tuple(session)
        self.value_low = value_low
        self.value_high = value_high
        self._sent = False

    def on_attach(self) -> None:
        assert self.process is not None
        n = self.process.params.n
        for receiver in range(n):
            value = self.value_low if receiver < n // 2 else self.value_high
            self.send(receiver, self.session, "VALUE", value)
        self._sent = True

    def on_message(self, message: Message) -> None:
        # Stay silent for the rest of the execution (a crash after
        # equivocating); the echo phase is driven by honest parties.
        return


class FBAValueInjector(HonestButMutatingBehavior):
    """Runs FBA honestly but with a fixed adversarial input value.

    Used by E5: with honest inputs diverging, the adversary wants its own value
    chosen; Theorem 4.5 says honest inputs still win with probability >= 1/2.
    """

    def __init__(self, value: Any) -> None:
        self.value = value
        super().__init__(lambda receiver, session, payload: (receiver, session, payload))

    def on_attach(self) -> None:
        super().on_attach()
        # The injected input is supplied through the simulation inputs map;
        # this behaviour exists so the corrupted party still runs the honest
        # code path (runs_honest_protocol is True) with the chosen value.


def corrupt_map(
    pids: Sequence[int], behavior_factory
) -> dict:
    """Convenience: the same behaviour factory for every party in ``pids``."""
    return {pid: behavior_factory for pid in pids}
