"""Adversary framework: corrupted-party behaviours and scheduling attacks."""

from repro.adversary.attacks import (
    BadShareBehavior,
    DeterministicValueDealer,
    EquivocatingACastSender,
    FBAValueInjector,
    PointCorruptingBehavior,
    SplitBrainEquivocator,
    WithholdingDealerBehavior,
    corrupt_map,
)
from repro.adversary.scheduling import (
    delay_protocol,
    favour_parties,
    isolate_party,
    random_scheduler,
    split_brain,
)
from repro.adversary.behaviors import (
    Behavior,
    CrashBehavior,
    EquivocatingBehavior,
    HardCrashBehavior,
    HonestButMutatingBehavior,
    RandomNoiseBehavior,
    ReplayBehavior,
    SilentAfterBehavior,
    crash_all,
)

__all__ = [
    "Behavior",
    "CrashBehavior",
    "EquivocatingBehavior",
    "HardCrashBehavior",
    "SplitBrainEquivocator",
    "HonestButMutatingBehavior",
    "RandomNoiseBehavior",
    "ReplayBehavior",
    "SilentAfterBehavior",
    "crash_all",
    "BadShareBehavior",
    "DeterministicValueDealer",
    "EquivocatingACastSender",
    "FBAValueInjector",
    "PointCorruptingBehavior",
    "WithholdingDealerBehavior",
    "corrupt_map",
    "delay_protocol",
    "favour_parties",
    "isolate_party",
    "random_scheduler",
    "split_brain",
]
