"""Adversarial party behaviours.

A corrupted :class:`~repro.net.process.Process` delegates every delivered
message to a :class:`Behavior`.  Behaviours range from the trivial (crash:
ignore everything) to protocol-aware attacks (an equivocating SVSS dealer, a
coin-biasing participant).  Protocol-specific attacks used by the lower-bound
experiments live in ``repro.lowerbound``.

Behaviours are installed through factories so a single experiment description
can be replayed across many seeds::

    sim.corrupt(3, CrashBehavior.factory())
    sim.corrupt(2, ByzantineEchoBehavior.factory(flip=True))
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.net.message import Message, SessionId
from repro.net.process import Process


class Behavior:
    """Base class for adversarial behaviours."""

    #: When True, the simulation still instantiates and starts the honest
    #: root protocol at this party (the behaviour intercepts or mutates
    #: around it).  When False the corrupted party runs no honest code.
    runs_honest_protocol = False

    def __init__(self) -> None:
        self.process: Optional[Process] = None

    # ------------------------------------------------------------------
    def attach(self, process: Process) -> None:
        """Bind the behaviour to its corrupted process (called by ``corrupt``)."""
        self.process = process
        self.on_attach()

    def on_attach(self) -> None:
        """Hook called once the process is known.  Override if needed."""

    def on_message(self, message: Message) -> None:
        """Handle a message delivered to the corrupted party.  Override."""

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        """The corrupted party's id."""
        assert self.process is not None
        return self.process.pid

    @property
    def rng(self) -> random.Random:
        """The corrupted party's randomness source."""
        assert self.process is not None
        return self.process.rng

    def send(self, receiver: int, session: SessionId, *payload: Any) -> None:
        """Send an arbitrary message in the corrupted party's name."""
        assert self.process is not None
        self.process.network.submit(self.pid, receiver, tuple(session), tuple(payload))

    def broadcast(self, session: SessionId, *payload: Any) -> None:
        """Send ``payload`` to every party under ``session``."""
        assert self.process is not None
        for receiver in range(self.process.params.n):
            self.send(receiver, session, *payload)

    # ------------------------------------------------------------------
    @classmethod
    def factory(cls, *args: Any, **kwargs: Any) -> Callable[[Process], "Behavior"]:
        """Return a ``process -> behaviour`` factory for :meth:`Simulation.corrupt`."""
        def build(_process: Process) -> "Behavior":
            return cls(*args, **kwargs)

        return build


class CrashBehavior(Behavior):
    """A crashed party: never sends anything, ignores everything.

    Equivalent to the "faulty and silent" party C used throughout the paper's
    lower-bound argument.
    """


class HardCrashBehavior(CrashBehavior):
    """A crash that also severs the party's outgoing channel.

    :class:`CrashBehavior` suffices for corruptions applied before the run
    (the honest protocol tree never starts, so nothing sends).  A party
    corrupted *mid-run* -- by an adaptive adversary or a fault timeline -- may
    still be inside a protocol action whose remaining sends would otherwise
    leak out; installing a drop-everything outgoing mutator makes the crash
    immediate and total.
    """

    def on_attach(self) -> None:
        assert self.process is not None
        self.process.outgoing_mutator = lambda receiver, session, payload: None


class SilentAfterBehavior(Behavior):
    """Runs honestly for ``active_deliveries`` messages, then crashes.

    The honest phase is approximated by echoing the original process logic:
    the behaviour forwards deliveries to the honest protocol tree until its
    budget runs out.  This models mid-protocol crash failures.
    """

    runs_honest_protocol = True

    def __init__(self, active_deliveries: int) -> None:
        super().__init__()
        self.active_deliveries = active_deliveries
        self._seen = 0

    def on_message(self, message: Message) -> None:
        assert self.process is not None
        if self._seen >= self.active_deliveries:
            return
        self._seen += 1
        # Temporarily act honestly: route through the protocol tree.
        behavior, self.process.behavior = self.process.behavior, None
        try:
            self.process.deliver(message)
        finally:
            self.process.behavior = behavior


class HonestButMutatingBehavior(Behavior):
    """Runs the honest protocol but rewrites its *outgoing* messages.

    ``mutator(receiver, session, payload)`` returns a replacement
    ``(receiver, session, payload)`` tuple, or None to drop the message.
    This captures a large family of Byzantine behaviours (wrong shares,
    flipped bits, selective silence) without re-implementing protocol logic.
    """

    runs_honest_protocol = True

    def __init__(
        self,
        mutator: Callable[[int, SessionId, tuple], Optional[Tuple[int, SessionId, tuple]]],
    ) -> None:
        super().__init__()
        self.mutator = mutator

    def on_attach(self) -> None:
        assert self.process is not None
        self.process.outgoing_mutator = self.mutator
        # The process keeps running its honest protocol tree: clear the
        # behaviour hook for deliveries but remember the corruption flag by
        # keeping ``behavior`` set on the process (handled in on_message).

    def on_message(self, message: Message) -> None:
        assert self.process is not None
        behavior, self.process.behavior = self.process.behavior, None
        try:
            self.process.deliver(message)
        finally:
            self.process.behavior = behavior


class EquivocatingBehavior(Behavior):
    """Sends value ``value_for_low`` to the lower half of parties and
    ``value_for_high`` to the rest whenever asked to broadcast through
    ``send_split``.  Used as a building block by protocol-specific attacks;
    on its own it ignores incoming messages."""

    def __init__(self, value_for_low: Any, value_for_high: Any) -> None:
        super().__init__()
        self.value_for_low = value_for_low
        self.value_for_high = value_for_high

    def send_split(self, session: SessionId, kind: str) -> None:
        """Send ``(kind, value)`` with a different value to each half."""
        assert self.process is not None
        n = self.process.params.n
        for receiver in range(n):
            value = self.value_for_low if receiver < n // 2 else self.value_for_high
            self.send(receiver, session, kind, value)


class ReplayBehavior(Behavior):
    """Records every delivered message and replays it back to its sender.

    A simple "noise" adversary used in robustness tests: it produces
    well-formed but stale traffic.
    """

    def __init__(self, max_replays: int = 1000) -> None:
        super().__init__()
        self.max_replays = max_replays
        self._replayed = 0
        self.log: List[Message] = []

    def on_message(self, message: Message) -> None:
        self.log.append(message)
        if self._replayed < self.max_replays:
            self._replayed += 1
            self.send(message.sender, message.session, *message.payload)


class RandomNoiseBehavior(Behavior):
    """Responds to every delivery with a burst of random garbage messages.

    Exercises the honest parties' input validation: unknown message kinds and
    malformed payloads must be ignored, never crash a protocol.
    """

    def __init__(self, burst: int = 2) -> None:
        super().__init__()
        self.burst = burst

    def on_message(self, message: Message) -> None:
        assert self.process is not None
        n = self.process.params.n
        for _ in range(self.burst):
            receiver = self.rng.randrange(n)
            kind = self.rng.choice(["GARBAGE", "ECHO", "READY", "VALUE", "EST"])
            payload = (kind, self.rng.randrange(1 << 16))
            self.send(receiver, message.session, *payload)


def crash_all(pids: List[int]) -> Dict[int, Callable[[Process], Behavior]]:
    """Convenience: a corruption map crashing every party in ``pids``."""
    return {pid: CrashBehavior.factory() for pid in pids}
