"""Raw-integer fast-path kernels for the crypto layer.

Every protocol statistic in this reproduction is backed by Monte-Carlo
campaigns whose cost is dominated by field arithmetic.  The object layer
(:class:`~repro.crypto.field.FieldElement`, wrapper-based
:class:`~repro.crypto.polynomial.Polynomial`) reads like the algebra in the
paper but pays one Python object allocation plus coercion checks per
operation.  The kernels in this module operate on plain ``int`` values (and
tuples of them) with the modulus passed explicitly, so the inner loops are
nothing but native big-int arithmetic.

``Polynomial``, ``Shamir``, ``reed_solomon`` and ``bivariate`` delegate here
and re-wrap only their results; property tests
(``tests/crypto/test_kernels.py``) assert the two paths agree on random
inputs.

Conventions:

* polynomial coefficients are low-degree-first sequences of ints in
  ``[0, prime)``;
* evaluation points handed to the cached Lagrange helpers must already be
  reduced modulo ``prime`` (callers reduce once, the cache key stays small);
* errors are reported with the same exception types and messages as the
  object layer, so the veneers stay drop-in replacements.

Party evaluation points are fixed for the lifetime of a run (ids ``1..n``),
so the Lagrange basis / reconstruction weights for a given ``(prime, xs)``
pair are computed once and memoised; afterwards a Shamir reconstruction is a
single dot product.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

from repro.errors import DecodingError, FieldError, InterpolationError

#: Upper bound on memoised Lagrange bases.  Each entry is O(k^2) ints; runs
#: use a handful of distinct share subsets, so this is far more than enough
#: while still bounding memory for adversarial workloads.
_LAGRANGE_CACHE_SIZE = 4096


# ---------------------------------------------------------------------------
# Modular scalar helpers.
# ---------------------------------------------------------------------------
def mod_inv(prime: int, value: int) -> int:
    """Multiplicative inverse of ``value`` modulo ``prime``.

    Raises:
        FieldError: when ``value`` is zero modulo ``prime``.
    """
    value %= prime
    if value == 0:
        raise FieldError("zero has no multiplicative inverse")
    return pow(value, -1, prime)


def batch_inverse(prime: int, values: Sequence[int]) -> List[int]:
    """Invert many values with one modular exponentiation (Montgomery trick).

    Costs ``3(k-1)`` multiplications plus a single :func:`mod_inv` instead of
    ``k`` exponentiations.

    Raises:
        FieldError: when any value is zero modulo ``prime``.
    """
    if not values:
        return []
    prefix: List[int] = []
    acc = 1
    for value in values:
        value %= prime
        if value == 0:
            raise FieldError("zero has no multiplicative inverse")
        acc = acc * value % prime
        prefix.append(acc)
    inverse = mod_inv(prime, acc)
    out = [0] * len(values)
    for index in range(len(values) - 1, 0, -1):
        out[index] = inverse * prefix[index - 1] % prime
        inverse = inverse * (values[index] % prime) % prime
    out[0] = inverse
    return out


# ---------------------------------------------------------------------------
# Dense univariate polynomial arithmetic (low-degree-first int sequences).
# ---------------------------------------------------------------------------
def poly_trim(coeffs: Sequence[int]) -> Tuple[int, ...]:
    """Drop trailing zero coefficients; the zero polynomial stays ``(0,)``."""
    end = len(coeffs)
    while end > 1 and coeffs[end - 1] == 0:
        end -= 1
    return tuple(coeffs[:end])


def poly_add(prime: int, a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    """Coefficient-wise sum of two polynomials."""
    if len(a) < len(b):
        a, b = b, a
    out = list(a)
    for index, coeff in enumerate(b):
        out[index] = (out[index] + coeff) % prime
    return tuple(out)


def poly_scale(prime: int, coeffs: Sequence[int], scalar: int) -> Tuple[int, ...]:
    """Multiply every coefficient by ``scalar``."""
    scalar %= prime
    return tuple(c * scalar % prime for c in coeffs)


def poly_mul(prime: int, a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    """Schoolbook product; fine at secret-sharing degrees (t <= n)."""
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] += ca * cb
    return tuple(c % prime for c in out)


def poly_divmod(
    prime: int, numerator: Sequence[int], divisor: Sequence[int]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Polynomial long division; returns ``(quotient, remainder)`` untrimmed.

    Mirrors :meth:`Polynomial.divmod`: the remainder keeps the numerator's
    length and the quotient has ``max(1, len(num) - len(div) + 1)`` slots.

    Raises:
        InterpolationError: when the divisor is the zero polynomial.
    """
    divisor = poly_trim([c % prime for c in divisor])
    if divisor == (0,):
        raise InterpolationError("polynomial division by zero")
    remainder = [c % prime for c in numerator]
    quotient = [0] * max(1, len(remainder) - len(divisor) + 1)
    divisor_degree = len(divisor) - 1
    lead_inv = mod_inv(prime, divisor[-1])
    for index in range(len(remainder) - 1, divisor_degree - 1, -1):
        coefficient = remainder[index] * lead_inv % prime
        if coefficient == 0:
            continue
        position = index - divisor_degree
        quotient[position] = coefficient
        for offset, dcoeff in enumerate(divisor):
            remainder[position + offset] = (
                remainder[position + offset] - coefficient * dcoeff
            ) % prime
    return tuple(quotient), tuple(remainder)


def horner(prime: int, coeffs: Sequence[int], x: int) -> int:
    """Evaluate a polynomial at ``x`` by Horner's rule."""
    acc = 0
    for coefficient in reversed(coeffs):
        acc = (acc * x + coefficient) % prime
    return acc


def eval_at_many(prime: int, coeffs: Sequence[int], xs: Sequence[int]) -> List[int]:
    """Evaluate one polynomial at several points."""
    rev = tuple(reversed(coeffs))
    out = []
    for x in xs:
        acc = 0
        for coefficient in rev:
            acc = (acc * x + coefficient) % prime
        out.append(acc)
    return out


def shamir_share_values(prime: int, coeffs: Sequence[int], n: int) -> List[int]:
    """Evaluations at the canonical party points ``1..n`` (Shamir shares).

    Vandermonde-free: incremental Horner per point, ``O(n * t)`` multiplies
    with no matrix construction.
    """
    return eval_at_many(prime, coeffs, range(1, n + 1))


# ---------------------------------------------------------------------------
# Lagrange interpolation with a cached basis per (prime, evaluation points).
# ---------------------------------------------------------------------------
@lru_cache(maxsize=_LAGRANGE_CACHE_SIZE)
def lagrange_basis(prime: int, xs: Tuple[int, ...]) -> Tuple[Tuple[int, ...], ...]:
    """Normalised Lagrange basis polynomials ``L_i`` for the points ``xs``.

    ``L_i(xs[i]) = 1`` and ``L_i(xs[j]) = 0`` for ``j != i``; any
    interpolation through ``(xs[i], ys[i])`` is then ``sum_i ys[i] * L_i``.

    Built in ``O(k^2)``: one master product ``P(X) = prod (X - x_i)``, one
    synthetic division per point, one batched inversion of the denominators.
    Memoised because party ids are fixed per run, so the same ``xs`` tuple
    recurs for every reconstruction.

    Raises:
        InterpolationError: on duplicate points (callers pre-reduce mod p).
    """
    k = len(xs)
    if len(set(xs)) != k:
        raise InterpolationError("interpolation points must have distinct x values")
    # Master product P(X) = prod_i (X - x_i), low-degree-first, monic degree k.
    master = [1]
    for x in xs:
        nxt = [0] * (len(master) + 1)
        for index, coeff in enumerate(master):
            nxt[index] = (nxt[index] - x * coeff) % prime
            nxt[index + 1] = (nxt[index + 1] + coeff) % prime
        master = nxt
    numerators: List[List[int]] = []
    denominators: List[int] = []
    for x in xs:
        # Synthetic division: N_i(X) = P(X) / (X - x_i), exact since x_i is a root.
        quotient = [0] * k
        quotient[k - 1] = master[k]
        for index in range(k - 1, 0, -1):
            quotient[index - 1] = (master[index] + x * quotient[index]) % prime
        numerators.append(quotient)
        denominators.append(horner(prime, quotient, x))
    try:
        inverses = batch_inverse(prime, denominators)
    except FieldError:  # pragma: no cover - impossible for distinct xs
        raise InterpolationError("interpolation points must have distinct x values")
    return tuple(
        poly_scale(prime, numerator, inverse)
        for numerator, inverse in zip(numerators, inverses)
    )


@lru_cache(maxsize=_LAGRANGE_CACHE_SIZE)
def lagrange_weights_at_zero(prime: int, xs: Tuple[int, ...]) -> Tuple[int, ...]:
    """Weights ``w_i`` with ``f(0) = sum_i w_i * f(xs[i])`` (shares the basis cache)."""
    return tuple(basis[0] for basis in lagrange_basis(prime, xs))


def interpolate(prime: int, xs: Tuple[int, ...], ys: Sequence[int]) -> Tuple[int, ...]:
    """Coefficients of the unique degree-``< k`` polynomial through the points.

    Args:
        prime: field modulus.
        xs: evaluation points, already reduced modulo ``prime``.
        ys: values at those points.

    Raises:
        InterpolationError: on empty input or duplicate x values.
    """
    if not xs:
        raise InterpolationError("cannot interpolate through zero points")
    basis = lagrange_basis(prime, xs)
    out = [0] * len(xs)
    for y, base in zip(ys, basis):
        y %= prime
        if y == 0:
            continue
        for index, coeff in enumerate(base):
            out[index] += y * coeff
    return tuple(c % prime for c in out)


def interpolate_at_zero(prime: int, xs: Tuple[int, ...], ys: Sequence[int]) -> int:
    """``f(0)`` of the interpolated polynomial -- the Shamir reconstruction map.

    With a warm weight cache this is a ``k``-term dot product.

    Raises:
        InterpolationError: on empty input or duplicate x values.
    """
    if not xs:
        raise InterpolationError("cannot interpolate through zero points")
    weights = lagrange_weights_at_zero(prime, xs)
    total = 0
    for weight, y in zip(weights, ys):
        total += weight * y
    return total % prime


def lagrange_cache_info():
    """Cache statistics for the memoised bases (exposed for tests/benchmarks)."""
    return lagrange_basis.cache_info()


def clear_lagrange_cache() -> None:
    """Drop memoised bases (used by benchmarks to measure cold paths)."""
    lagrange_basis.cache_clear()
    lagrange_weights_at_zero.cache_clear()


# ---------------------------------------------------------------------------
# Gaussian elimination and Berlekamp-Welch on raw ints.
# ---------------------------------------------------------------------------
def solve_linear_system(
    prime: int, matrix: Sequence[Sequence[int]], rhs: Sequence[int]
) -> Optional[List[int]]:
    """Solve ``matrix @ x = rhs`` over GF(prime) by Gaussian elimination.

    Returns one solution (free variables set to zero) or None when the system
    is inconsistent.  Same pivoting order as the object-layer original, so the
    selected solution is identical.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    augmented = [[c % prime for c in row] + [rhs[r] % prime] for r, row in enumerate(matrix)]
    pivot_cols: List[int] = []
    pivot_row = 0
    width = cols + 1
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if augmented[row][col] != 0:
                pivot = row
                break
        if pivot is None:
            continue
        augmented[pivot_row], augmented[pivot] = augmented[pivot], augmented[pivot_row]
        inverse = pow(augmented[pivot_row][col], -1, prime)
        pivot_entries = [entry * inverse % prime for entry in augmented[pivot_row]]
        augmented[pivot_row] = pivot_entries
        for row in range(rows):
            if row != pivot_row and augmented[row][col] != 0:
                factor = augmented[row][col]
                target = augmented[row]
                for index in range(width):
                    target[index] = (target[index] - factor * pivot_entries[index]) % prime
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break
    for row in range(pivot_row, rows):
        if all(entry == 0 for entry in augmented[row][:-1]) and augmented[row][-1] != 0:
            return None
    solution = [0] * cols
    for row_index, col in enumerate(pivot_cols):
        solution[col] = augmented[row_index][-1]
    return solution


def berlekamp_welch_raw(
    prime: int,
    xs: Sequence[int],
    ys: Sequence[int],
    degree: int,
    max_errors: int,
) -> Tuple[int, ...]:
    """Berlekamp-Welch decoding on raw ints; returns trimmed coefficients.

    Same contract (and error messages) as
    :func:`repro.crypto.reed_solomon.berlekamp_welch`, which now delegates
    here after unwrapping its points.

    Raises:
        DecodingError: when no degree-``degree`` polynomial explains all but
            at most ``max_errors`` of the points.
    """
    n = len(xs)
    if max_errors < 0:
        raise DecodingError("max_errors must be non-negative")
    if n < degree + 1 + 2 * max_errors:
        raise DecodingError(
            f"Berlekamp-Welch needs at least {degree + 1 + 2 * max_errors} points "
            f"for degree {degree} with {max_errors} errors; got {n}"
        )
    xs = [x % prime for x in xs]
    ys = [y % prime for y in ys]
    if len(set(xs)) != n:
        raise DecodingError("decoding points must have distinct x values")

    if max_errors == 0:
        coeffs = interpolate(prime, tuple(xs[: degree + 1]), ys[: degree + 1])
        for x, y in zip(xs, ys):
            if horner(prime, coeffs, x) != y:
                raise DecodingError("points are not on a single polynomial")
        return poly_trim(coeffs)

    # Unknowns: the non-leading coefficients of the monic error locator E
    # (degree max_errors) and all coefficients of Q (degree degree+max_errors),
    # satisfying Q(x_i) = y_i * E(x_i) at every point.
    num_e = max_errors
    num_q = degree + max_errors + 1
    matrix: List[List[int]] = []
    rhs: List[int] = []
    for x, y in zip(xs, ys):
        row: List[int] = []
        x_power = 1
        for _ in range(num_e):
            row.append(y * x_power % prime)
            x_power = x_power * x % prime
        leading = y * x_power % prime  # y * x^max_errors moves to the RHS
        x_power = 1
        for _ in range(num_q):
            row.append(-x_power % prime)
            x_power = x_power * x % prime
        matrix.append(row)
        rhs.append(-leading % prime)

    solution = solve_linear_system(prime, matrix, rhs)
    if solution is None:
        raise DecodingError("Berlekamp-Welch system is inconsistent (too many errors)")
    error_locator = tuple(solution[:num_e]) + (1,)
    q_coeffs = poly_trim(solution[num_e:])
    quotient, remainder = poly_divmod(prime, q_coeffs, error_locator)
    if any(c != 0 for c in remainder):
        raise DecodingError("error locator does not divide Q; too many errors")
    quotient = poly_trim(quotient)
    if len(quotient) - 1 > degree:
        raise DecodingError("decoded polynomial exceeds the expected degree")
    disagreements = sum(1 for x, y in zip(xs, ys) if horner(prime, quotient, x) != y)
    if disagreements > max_errors:
        raise DecodingError(
            f"decoded polynomial disagrees with {disagreements} points "
            f"(> {max_errors} allowed)"
        )
    return quotient


# ---------------------------------------------------------------------------
# Symmetric bivariate helpers.
# ---------------------------------------------------------------------------
def bivariate_eval(
    prime: int, matrix: Sequence[Sequence[int]], x: int, y: int
) -> int:
    """Evaluate ``F(x, y) = sum c[i][j] x^i y^j`` (Horner in x of Horners in y)."""
    acc = 0
    for row in reversed(matrix):
        inner = 0
        for coefficient in reversed(row):
            inner = (inner * y + coefficient) % prime
        acc = (acc * x + inner) % prime
    return acc


def bivariate_row(
    prime: int, matrix: Sequence[Sequence[int]], x: int
) -> Tuple[int, ...]:
    """Coefficients of the row polynomial ``f_x(y) = F(x, y)``.

    ``O(t^2)`` int multiplies; the object layer previously paid the same
    asymptotics in FieldElement allocations.
    """
    size = len(matrix)
    out = [0] * size
    x_power = 1
    for i in range(size):
        row = matrix[i]
        if x_power:
            for j in range(size):
                out[j] += row[j] * x_power
        x_power = x_power * x % prime
    return tuple(c % prime for c in out)
