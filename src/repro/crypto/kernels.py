"""Raw-integer fast-path kernels for the crypto layer.

Every protocol statistic in this reproduction is backed by Monte-Carlo
campaigns whose cost is dominated by field arithmetic.  The object layer
(:class:`~repro.crypto.field.FieldElement`, wrapper-based
:class:`~repro.crypto.polynomial.Polynomial`) reads like the algebra in the
paper but pays one Python object allocation plus coercion checks per
operation.  The kernels in this module operate on plain ``int`` values (and
tuples of them) with the modulus passed explicitly, so the inner loops are
nothing but native big-int arithmetic.

``Polynomial``, ``Shamir``, ``reed_solomon`` and ``bivariate`` delegate here
and re-wrap only their results; property tests
(``tests/crypto/test_kernels.py``) assert the two paths agree on random
inputs.

Conventions:

* polynomial coefficients are low-degree-first sequences of ints in
  ``[0, prime)``;
* evaluation points handed to the cached Lagrange helpers must already be
  reduced modulo ``prime`` (callers reduce once, the cache key stays small);
* errors are reported with the same exception types and messages as the
  object layer, so the veneers stay drop-in replacements.

Party evaluation points are fixed for the lifetime of a run (ids ``1..n``),
so the Lagrange basis / reconstruction weights for a given ``(prime, xs)``
pair are computed once and memoised; afterwards a Shamir reconstruction is a
single dot product.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DecodingError, FieldError, InterpolationError

try:  # Optional accelerator: exact int64 matmuls for the batched plane.
    import numpy as _np
except ImportError:  # pragma: no cover - the container bakes numpy in
    _np = None

#: Upper bound on memoised Lagrange bases.  Each entry is O(k^2) ints; runs
#: use a handful of distinct share subsets, so this is far more than enough
#: while still bounding memory for adversarial workloads.
_LAGRANGE_CACHE_SIZE = 4096


# ---------------------------------------------------------------------------
# Modular scalar helpers.
# ---------------------------------------------------------------------------
def mod_inv(prime: int, value: int) -> int:
    """Multiplicative inverse of ``value`` modulo ``prime``.

    Raises:
        FieldError: when ``value`` is zero modulo ``prime``.
    """
    value %= prime
    if value == 0:
        raise FieldError("zero has no multiplicative inverse")
    return pow(value, -1, prime)


def batch_inverse(prime: int, values: Sequence[int]) -> List[int]:
    """Invert many values with one modular exponentiation (Montgomery trick).

    Costs ``3(k-1)`` multiplications plus a single :func:`mod_inv` instead of
    ``k`` exponentiations.

    Raises:
        FieldError: when any value is zero modulo ``prime``.
    """
    if not values:
        return []
    prefix: List[int] = []
    acc = 1
    for value in values:
        value %= prime
        if value == 0:
            raise FieldError("zero has no multiplicative inverse")
        acc = acc * value % prime
        prefix.append(acc)
    inverse = mod_inv(prime, acc)
    out = [0] * len(values)
    for index in range(len(values) - 1, 0, -1):
        out[index] = inverse * prefix[index - 1] % prime
        inverse = inverse * (values[index] % prime) % prime
    out[0] = inverse
    return out


# ---------------------------------------------------------------------------
# Dense univariate polynomial arithmetic (low-degree-first int sequences).
# ---------------------------------------------------------------------------
def poly_trim(coeffs: Sequence[int]) -> Tuple[int, ...]:
    """Drop trailing zero coefficients; the zero polynomial stays ``(0,)``."""
    end = len(coeffs)
    while end > 1 and coeffs[end - 1] == 0:
        end -= 1
    return tuple(coeffs[:end])


def poly_add(prime: int, a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    """Coefficient-wise sum of two polynomials."""
    if len(a) < len(b):
        a, b = b, a
    out = list(a)
    for index, coeff in enumerate(b):
        out[index] = (out[index] + coeff) % prime
    return tuple(out)


def poly_scale(prime: int, coeffs: Sequence[int], scalar: int) -> Tuple[int, ...]:
    """Multiply every coefficient by ``scalar``."""
    scalar %= prime
    return tuple(c * scalar % prime for c in coeffs)


def poly_mul(prime: int, a: Sequence[int], b: Sequence[int]) -> Tuple[int, ...]:
    """Schoolbook product; fine at secret-sharing degrees (t <= n)."""
    out = [0] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if ca == 0:
            continue
        for j, cb in enumerate(b):
            out[i + j] += ca * cb
    return tuple(c % prime for c in out)


def poly_divmod(
    prime: int, numerator: Sequence[int], divisor: Sequence[int]
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Polynomial long division; returns ``(quotient, remainder)`` untrimmed.

    Mirrors :meth:`Polynomial.divmod`: the remainder keeps the numerator's
    length and the quotient has ``max(1, len(num) - len(div) + 1)`` slots.

    Raises:
        InterpolationError: when the divisor is the zero polynomial.
    """
    divisor = poly_trim([c % prime for c in divisor])
    if divisor == (0,):
        raise InterpolationError("polynomial division by zero")
    remainder = [c % prime for c in numerator]
    quotient = [0] * max(1, len(remainder) - len(divisor) + 1)
    divisor_degree = len(divisor) - 1
    lead_inv = mod_inv(prime, divisor[-1])
    for index in range(len(remainder) - 1, divisor_degree - 1, -1):
        coefficient = remainder[index] * lead_inv % prime
        if coefficient == 0:
            continue
        position = index - divisor_degree
        quotient[position] = coefficient
        for offset, dcoeff in enumerate(divisor):
            remainder[position + offset] = (
                remainder[position + offset] - coefficient * dcoeff
            ) % prime
    return tuple(quotient), tuple(remainder)


def horner(prime: int, coeffs: Sequence[int], x: int) -> int:
    """Evaluate a polynomial at ``x`` by Horner's rule."""
    acc = 0
    for coefficient in reversed(coeffs):
        acc = (acc * x + coefficient) % prime
    return acc


def eval_at_many(prime: int, coeffs: Sequence[int], xs: Sequence[int]) -> List[int]:
    """Evaluate one polynomial at several points."""
    rev = tuple(reversed(coeffs))
    out = []
    for x in xs:
        acc = 0
        for coefficient in rev:
            acc = (acc * x + coefficient) % prime
        out.append(acc)
    return out


def shamir_share_values(prime: int, coeffs: Sequence[int], n: int) -> List[int]:
    """Evaluations at the canonical party points ``1..n`` (Shamir shares).

    Vandermonde-free: incremental Horner per point, ``O(n * t)`` multiplies
    with no matrix construction.
    """
    return eval_at_many(prime, coeffs, range(1, n + 1))


# ---------------------------------------------------------------------------
# Lagrange interpolation with a cached basis per (prime, evaluation points).
# ---------------------------------------------------------------------------
@lru_cache(maxsize=_LAGRANGE_CACHE_SIZE)
def lagrange_basis(prime: int, xs: Tuple[int, ...]) -> Tuple[Tuple[int, ...], ...]:
    """Normalised Lagrange basis polynomials ``L_i`` for the points ``xs``.

    ``L_i(xs[i]) = 1`` and ``L_i(xs[j]) = 0`` for ``j != i``; any
    interpolation through ``(xs[i], ys[i])`` is then ``sum_i ys[i] * L_i``.

    Built in ``O(k^2)``: one master product ``P(X) = prod (X - x_i)``, one
    synthetic division per point, one batched inversion of the denominators.
    Memoised because party ids are fixed per run, so the same ``xs`` tuple
    recurs for every reconstruction.

    Raises:
        InterpolationError: on duplicate points (callers pre-reduce mod p).
    """
    k = len(xs)
    if len(set(xs)) != k:
        raise InterpolationError("interpolation points must have distinct x values")
    # Master product P(X) = prod_i (X - x_i), low-degree-first, monic degree k.
    master = [1]
    for x in xs:
        nxt = [0] * (len(master) + 1)
        for index, coeff in enumerate(master):
            nxt[index] = (nxt[index] - x * coeff) % prime
            nxt[index + 1] = (nxt[index + 1] + coeff) % prime
        master = nxt
    numerators: List[List[int]] = []
    denominators: List[int] = []
    for x in xs:
        # Synthetic division: N_i(X) = P(X) / (X - x_i), exact since x_i is a root.
        quotient = [0] * k
        quotient[k - 1] = master[k]
        for index in range(k - 1, 0, -1):
            quotient[index - 1] = (master[index] + x * quotient[index]) % prime
        numerators.append(quotient)
        denominators.append(horner(prime, quotient, x))
    try:
        inverses = batch_inverse(prime, denominators)
    except FieldError:  # pragma: no cover - impossible for distinct xs
        raise InterpolationError("interpolation points must have distinct x values")
    return tuple(
        poly_scale(prime, numerator, inverse)
        for numerator, inverse in zip(numerators, inverses)
    )


@lru_cache(maxsize=_LAGRANGE_CACHE_SIZE)
def lagrange_weights_at_zero(prime: int, xs: Tuple[int, ...]) -> Tuple[int, ...]:
    """Weights ``w_i`` with ``f(0) = sum_i w_i * f(xs[i])``.

    Computed directly as ``w_i = prod_{j != i} x_j / (x_j - x_i)`` -- the same
    residues as ``lagrange_basis(prime, xs)[i][0]`` (property-tested) at a
    fraction of the cost: prefix/suffix products for the numerators, one
    O(k^2) sweep of difference products and a single :func:`batch_inverse`
    for the denominators, with no polynomial construction at all.  Each cache
    entry is O(k) ints where a basis entry is O(k^2); reconstruction-heavy
    sweeps (one fixed-set signature per completed SVSS-Rec) therefore hit a
    bounded cache of small entries.

    Raises:
        InterpolationError: on duplicate points (callers pre-reduce mod p).
    """
    k = len(xs)
    if len(set(xs)) != k:
        raise InterpolationError("interpolation points must have distinct x values")
    # Numerators: prod_{j != i} x_j via prefix/suffix products.
    prefix = [1] * (k + 1)
    for index, x in enumerate(xs):
        prefix[index + 1] = prefix[index] * x % prime
    suffix = 1
    numerators = [0] * k
    for index in range(k - 1, -1, -1):
        numerators[index] = prefix[index] * suffix % prime
        suffix = suffix * xs[index] % prime
    # Denominators: prod_{j != i} (x_j - x_i), inverted in one batch sweep.
    denominators = [1] * k
    for i in range(k):
        x_i = xs[i]
        acc = 1
        for j in range(k):
            if j != i:
                acc = acc * (xs[j] - x_i) % prime
        denominators[i] = acc
    try:
        inverses = batch_inverse(prime, denominators)
    except FieldError:  # pragma: no cover - impossible for distinct xs
        raise InterpolationError("interpolation points must have distinct x values")
    return tuple(n * inv % prime for n, inv in zip(numerators, inverses))


def interpolate(prime: int, xs: Tuple[int, ...], ys: Sequence[int]) -> Tuple[int, ...]:
    """Coefficients of the unique degree-``< k`` polynomial through the points.

    Args:
        prime: field modulus.
        xs: evaluation points, already reduced modulo ``prime``.
        ys: values at those points.

    Raises:
        InterpolationError: on empty input or duplicate x values.
    """
    if not xs:
        raise InterpolationError("cannot interpolate through zero points")
    basis = lagrange_basis(prime, xs)
    out = [0] * len(xs)
    for y, base in zip(ys, basis):
        y %= prime
        if y == 0:
            continue
        for index, coeff in enumerate(base):
            out[index] += y * coeff
    return tuple(c % prime for c in out)


def interpolate_at_zero(prime: int, xs: Tuple[int, ...], ys: Sequence[int]) -> int:
    """``f(0)`` of the interpolated polynomial -- the Shamir reconstruction map.

    With a warm weight cache this is a ``k``-term dot product.

    Raises:
        InterpolationError: on empty input or duplicate x values.
    """
    if not xs:
        raise InterpolationError("cannot interpolate through zero points")
    weights = lagrange_weights_at_zero(prime, xs)
    total = 0
    for weight, y in zip(weights, ys):
        total += weight * y
    return total % prime


class LagrangeCacheInfo:
    """Combined statistics of the bounded Lagrange caches.

    Attribute-compatible with ``functools.CacheInfo`` (``hits``, ``misses``,
    ``maxsize``, ``currsize`` summed over the basis and weight caches) and
    JSON-able via :meth:`to_dict`, which also breaks the numbers out per
    cache -- the form the perf benchmarks persist in their metadata.
    """

    __slots__ = ("hits", "misses", "maxsize", "currsize", "per_cache")

    def __init__(self) -> None:
        basis = lagrange_basis.cache_info()
        weights = lagrange_weights_at_zero.cache_info()
        self.hits = basis.hits + weights.hits
        self.misses = basis.misses + weights.misses
        self.maxsize = (basis.maxsize or 0) + (weights.maxsize or 0)
        self.currsize = basis.currsize + weights.currsize
        self.per_cache = {
            "basis": basis._asdict(),
            "weights_at_zero": weights._asdict(),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "maxsize": self.maxsize,
            "currsize": self.currsize,
            **self.per_cache,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"LagrangeCacheInfo(hits={self.hits}, misses={self.misses}, "
            f"maxsize={self.maxsize}, currsize={self.currsize})"
        )


def lagrange_cache_info() -> LagrangeCacheInfo:
    """Hit/size statistics for the bounded Lagrange caches (tests/benchmarks)."""
    return LagrangeCacheInfo()


def clear_lagrange_cache() -> None:
    """Drop memoised bases and weights (benchmarks measure cold paths with this)."""
    lagrange_basis.cache_clear()
    lagrange_weights_at_zero.cache_clear()


# ---------------------------------------------------------------------------
# Gaussian elimination and Berlekamp-Welch on raw ints.
# ---------------------------------------------------------------------------
def solve_linear_system(
    prime: int, matrix: Sequence[Sequence[int]], rhs: Sequence[int]
) -> Optional[List[int]]:
    """Solve ``matrix @ x = rhs`` over GF(prime) by Gaussian elimination.

    Returns one solution (free variables set to zero) or None when the system
    is inconsistent.  Same pivoting order as the object-layer original, so the
    selected solution is identical.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    augmented = [[c % prime for c in row] + [rhs[r] % prime] for r, row in enumerate(matrix)]
    pivot_cols: List[int] = []
    pivot_row = 0
    width = cols + 1
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if augmented[row][col] != 0:
                pivot = row
                break
        if pivot is None:
            continue
        augmented[pivot_row], augmented[pivot] = augmented[pivot], augmented[pivot_row]
        inverse = pow(augmented[pivot_row][col], -1, prime)
        pivot_entries = [entry * inverse % prime for entry in augmented[pivot_row]]
        augmented[pivot_row] = pivot_entries
        for row in range(rows):
            if row != pivot_row and augmented[row][col] != 0:
                factor = augmented[row][col]
                target = augmented[row]
                for index in range(width):
                    target[index] = (target[index] - factor * pivot_entries[index]) % prime
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break
    for row in range(pivot_row, rows):
        if all(entry == 0 for entry in augmented[row][:-1]) and augmented[row][-1] != 0:
            return None
    solution = [0] * cols
    for row_index, col in enumerate(pivot_cols):
        solution[col] = augmented[row_index][-1]
    return solution


def berlekamp_welch_raw(
    prime: int,
    xs: Sequence[int],
    ys: Sequence[int],
    degree: int,
    max_errors: int,
) -> Tuple[int, ...]:
    """Berlekamp-Welch decoding on raw ints; returns trimmed coefficients.

    Same contract (and error messages) as
    :func:`repro.crypto.reed_solomon.berlekamp_welch`, which now delegates
    here after unwrapping its points.

    Raises:
        DecodingError: when no degree-``degree`` polynomial explains all but
            at most ``max_errors`` of the points.
    """
    n = len(xs)
    if max_errors < 0:
        raise DecodingError("max_errors must be non-negative")
    if n < degree + 1 + 2 * max_errors:
        raise DecodingError(
            f"Berlekamp-Welch needs at least {degree + 1 + 2 * max_errors} points "
            f"for degree {degree} with {max_errors} errors; got {n}"
        )
    xs = [x % prime for x in xs]
    ys = [y % prime for y in ys]
    if len(set(xs)) != n:
        raise DecodingError("decoding points must have distinct x values")

    if max_errors == 0:
        coeffs = interpolate(prime, tuple(xs[: degree + 1]), ys[: degree + 1])
        for x, y in zip(xs, ys):
            if horner(prime, coeffs, x) != y:
                raise DecodingError("points are not on a single polynomial")
        return poly_trim(coeffs)

    # Unknowns: the non-leading coefficients of the monic error locator E
    # (degree max_errors) and all coefficients of Q (degree degree+max_errors),
    # satisfying Q(x_i) = y_i * E(x_i) at every point.
    num_e = max_errors
    num_q = degree + max_errors + 1
    matrix: List[List[int]] = []
    rhs: List[int] = []
    for x, y in zip(xs, ys):
        row: List[int] = []
        x_power = 1
        for _ in range(num_e):
            row.append(y * x_power % prime)
            x_power = x_power * x % prime
        leading = y * x_power % prime  # y * x^max_errors moves to the RHS
        x_power = 1
        for _ in range(num_q):
            row.append(-x_power % prime)
            x_power = x_power * x % prime
        matrix.append(row)
        rhs.append(-leading % prime)

    solution = solve_linear_system(prime, matrix, rhs)
    if solution is None:
        raise DecodingError("Berlekamp-Welch system is inconsistent (too many errors)")
    error_locator = tuple(solution[:num_e]) + (1,)
    q_coeffs = poly_trim(solution[num_e:])
    quotient, remainder = poly_divmod(prime, q_coeffs, error_locator)
    if any(c != 0 for c in remainder):
        raise DecodingError("error locator does not divide Q; too many errors")
    quotient = poly_trim(quotient)
    if len(quotient) - 1 > degree:
        raise DecodingError("decoded polynomial exceeds the expected degree")
    disagreements = sum(1 for x, y in zip(xs, ys) if horner(prime, quotient, x) != y)
    if disagreements > max_errors:
        raise DecodingError(
            f"decoded polynomial disagrees with {disagreements} points "
            f"(> {max_errors} allowed)"
        )
    return quotient


# ---------------------------------------------------------------------------
# Symmetric bivariate helpers.
# ---------------------------------------------------------------------------
def bivariate_eval(
    prime: int, matrix: Sequence[Sequence[int]], x: int, y: int
) -> int:
    """Evaluate ``F(x, y) = sum c[i][j] x^i y^j`` (Horner in x of Horners in y)."""
    acc = 0
    for row in reversed(matrix):
        inner = 0
        for coefficient in reversed(row):
            inner = (inner * y + coefficient) % prime
        acc = (acc * x + inner) % prime
    return acc


def bivariate_row(
    prime: int, matrix: Sequence[Sequence[int]], x: int
) -> Tuple[int, ...]:
    """Coefficients of the row polynomial ``f_x(y) = F(x, y)``.

    ``O(t^2)`` int multiplies; the object layer previously paid the same
    asymptotics in FieldElement allocations.
    """
    size = len(matrix)
    out = [0] * size
    x_power = 1
    for i in range(size):
        row = matrix[i]
        if x_power:
            for j in range(size):
                out[j] += row[j] * x_power
        x_power = x_power * x % prime
    return tuple(c % prime for c in out)


# ---------------------------------------------------------------------------
# Batched evaluation plane.
#
# Every coin flip runs O(n^2) concurrent SVSS instances over the *same* field
# and the *same* canonical party points 1..n.  The scalar kernels above
# re-derive the evaluation machinery (point powers, Lagrange denominators)
# per call; the plane below precomputes it once per (prime, n) and batches
# whole-row work into exact int64 matrix products when numpy is available.
# The scalar kernels remain the oracle: every plane result is byte-identical
# to the corresponding scalar computation (property-tested in
# ``tests/crypto/test_eval_plan.py``).
# ---------------------------------------------------------------------------

#: Entry bound for the per-trial row/eval caches of a CryptoPlane.  A weak
#: coin at n=64 produces ~n^2 distinct rows; adversarial floods of distinct
#: junk rows are bounded by the network's max_steps, but the cap keeps even
#: those from growing a plane without limit (the cache is cleared, not LRU --
#: hits immediately repopulate the working set).
_PLANE_ROW_CACHE_LIMIT = 65536
#: Entry bound for the per-trial fixed-set reconstruction-weight cache.
_PLANE_WEIGHTS_CACHE_LIMIT = 8192

#: Planes smaller than this gain nothing from numpy dispatch overhead; the
#: scalar kernels win below roughly 24 parties (row lengths t+1 <= 8 make a
#: vectorised sweep overhead-bound), and the shared-cache amortisation works
#: the same either way.
_NUMPY_MIN_N = 24

#: Process-wide evaluation-mode override (the ablation hook).  ``None`` keeps
#: the automatic numpy-vs-scalar choice below; ``"scalar"`` forces every plan
#: built while the override is set onto the plain-int kernels, which are the
#: byte-identical oracle the vectorised modes are tested against.  Set it
#: through :func:`set_plan_mode_override` / :func:`plan_mode_override` only --
#: they invalidate the shared :func:`get_eval_plan` cache on change, so plans
#: built under a different override are never reused.
_PLAN_MODE_OVERRIDE: Optional[str] = None

_MISSING = object()


class EvalPlan:
    """Immutable per-``(prime, n)`` evaluation tables, shared process-wide.

    Holds the party-point power table ``x^j`` for every ``x in 1..n`` and
    ``j in 0..n-1`` (so row validation and share generation become dot
    products against precomputed columns) and the inverses of every pairwise
    point difference.  Party points are the consecutive ints ``1..n``, so all
    differences ``x_j - x_i`` lie in ``[-n, n]`` and a **single**
    :func:`batch_inverse` sweep at plan-construction time covers every
    Lagrange-weight denominator any reconstruction will ever need.

    Three evaluation modes, chosen once per plan:

    * ``"matmul"`` -- one exact int64 matrix product: every intermediate is
      bounded by ``n * (prime-1)^2 < 2^63``;
    * ``"split"`` -- coefficients are split into 16-bit halves and combined
      after two products, exact for any ``prime <= 2^31`` (the library
      default ``2^31 - 1`` included);
    * ``"scalar"`` -- the plain-int kernels, used when numpy is unavailable
      or the system is too small for vectorisation to pay.
    """

    __slots__ = ("prime", "n", "points", "mode", "inv_signed", "_pow", "_pow_t", "stats")

    def __init__(self, prime: int, n: int) -> None:
        self.prime = prime
        self.n = n
        self.points: Tuple[int, ...] = tuple(range(1, n + 1))
        #: Batched-call dispatch counters (vectorised vs scalar fallback),
        #: read by the metrics registry.  Plans are shared process-wide, so
        #: per-run numbers are deltas against a captured baseline.
        self.stats: Dict[str, int] = {"vector_calls": 0, "scalar_calls": 0}
        if _PLAN_MODE_OVERRIDE == "scalar" or _np is None or n < _NUMPY_MIN_N:
            self.mode = "scalar"
        elif (prime - 1) * (prime - 1) * n < 2**63:
            self.mode = "matmul"
        elif prime <= 2**31:
            self.mode = "split"
        else:
            self.mode = "scalar"
        if self.mode != "scalar":
            self._pow = _np.array(
                [[pow(x, j, prime) for j in range(n)] for x in self.points],
                dtype=_np.int64,
            )
            self._pow_t = self._pow.T.copy()
        else:
            self._pow = None
            self._pow_t = None
        # inv_signed[d + n] = (d mod prime)^-1 for d in [-n, n], d != 0: the
        # single batch_inverse sweep backing every subset-weight denominator.
        diffs = [d for d in range(-n, n + 1) if d != 0]
        inverses = batch_inverse(prime, diffs)
        table = [0] * (2 * n + 1)
        for d, inv in zip(diffs, inverses):
            table[d + n] = inv
        self.inv_signed: List[int] = table

    # -- batched evaluations -------------------------------------------
    def eval_all_points(self, coeffs: Sequence[int]) -> List[int]:
        """``[f(1), ..., f(n)]`` for one reduced-coefficient polynomial."""
        mode = self.mode
        if mode == "scalar":
            self.stats["scalar_calls"] += 1
            return eval_at_many(self.prime, coeffs, self.points)
        self.stats["vector_calls"] += 1
        width = len(coeffs)
        table = self._pow[:, :width]
        if mode == "matmul":
            return (table @ _np.array(coeffs, dtype=_np.int64) % self.prime).tolist()
        arr = _np.array(coeffs, dtype=_np.int64)
        return (
            ((table @ (arr >> 16)) % self.prime * 65536 + table @ (arr & 0xFFFF))
            % self.prime
        ).tolist()

    def eval_rows_at_point(
        self, rows: Sequence[Sequence[int]], point: int
    ) -> List[int]:
        """``[f(point) for f in rows]`` in one batched product.

        ``rows`` are reduced-coefficient sequences (ragged lengths allowed);
        ``point`` must be reduced modulo ``prime``.
        """
        prime = self.prime
        if self.mode == "scalar" or not rows:
            self.stats["scalar_calls"] += 1
            return [horner(prime, row, point) for row in rows]
        self.stats["vector_calls"] += 1
        width = max(len(row) for row in rows)
        if 1 <= point <= self.n and width <= self.n:
            powers = self._pow[point - 1, :width]
        else:
            values = [1] * width
            for j in range(1, width):
                values[j] = values[j - 1] * point % prime
            powers = _np.array(values, dtype=_np.int64)
        matrix = _np.zeros((len(rows), width), dtype=_np.int64)
        for index, row in enumerate(rows):
            matrix[index, : len(row)] = row
        if self.mode == "matmul":
            return (matrix @ powers % prime).tolist()
        return (
            (((matrix >> 16) @ powers) % prime * 65536 + (matrix & 0xFFFF) @ powers)
            % prime
        ).tolist()

    def bivariate_rows(self, matrix: Sequence[Sequence[int]]) -> List[Tuple[int, ...]]:
        """All ``n`` wire-format rows of a symmetric bivariate coefficient matrix.

        ``result[i]`` equals ``poly_trim(bivariate_row(prime, matrix, i + 1))``
        -- exactly the tuple the dealer previously built row by row -- but the
        whole grid is one matrix product.
        """
        prime = self.prime
        if self.mode == "scalar":
            self.stats["scalar_calls"] += 1
            return [
                poly_trim(bivariate_row(prime, matrix, x)) for x in self.points
            ]
        self.stats["vector_calls"] += 1
        width = len(matrix)
        table = self._pow[:, :width]
        coeffs = _np.array(matrix, dtype=_np.int64)
        if self.mode == "matmul":
            grid = table @ coeffs % prime
        else:
            grid = (
                (table @ (coeffs >> 16)) % prime * 65536 + table @ (coeffs & 0xFFFF)
            ) % prime
        return [poly_trim(row) for row in grid.tolist()]

    def shares_many(self, coeffs_list: Sequence[Sequence[int]]) -> List[List[int]]:
        """Shamir shares at ``1..n`` for many polynomials (one batched product)."""
        prime = self.prime
        if self.mode == "scalar" or not coeffs_list:
            self.stats["scalar_calls"] += 1
            return [
                eval_at_many(prime, coeffs, self.points) for coeffs in coeffs_list
            ]
        self.stats["vector_calls"] += 1
        width = max(len(coeffs) for coeffs in coeffs_list)
        matrix = _np.zeros((len(coeffs_list), width), dtype=_np.int64)
        for index, coeffs in enumerate(coeffs_list):
            matrix[index, : len(coeffs)] = coeffs
        table = self._pow_t[:width]
        if self.mode == "matmul":
            return (matrix @ table % prime).tolist()
        return (
            (((matrix >> 16) @ table) % prime * 65536 + (matrix & 0xFFFF) @ table)
            % prime
        ).tolist()

    # -- reconstruction weights ----------------------------------------
    def subset_weights(self, pids: Sequence[int]) -> Tuple[int, ...]:
        """Lagrange weights at zero for the party subset ``pids`` (0-based).

        Byte-identical to ``lagrange_weights_at_zero(prime, xs)`` for
        ``xs = tuple(pid + 1 for pid in pids)``, but every denominator factor
        is a lookup into the plan's precomputed difference inverses, so a
        fixed-set signature costs ``O(k^2)`` multiplications and **zero**
        modular inversions.
        """
        prime = self.prime
        n = self.n
        inv_signed = self.inv_signed
        xs = [pid + 1 for pid in pids]
        k = len(xs)
        # Numerators prod_{j != i} x_j via prefix/suffix products.
        prefix = [1] * (k + 1)
        for index, x in enumerate(xs):
            prefix[index + 1] = prefix[index] * x % prime
        suffix = 1
        weights = [0] * k
        for index in range(k - 1, -1, -1):
            weights[index] = prefix[index] * suffix % prime
            suffix = suffix * xs[index] % prime
        # Denominators as products of precomputed difference inverses (two
        # ranges instead of a skip-self branch per factor).
        for i in range(k):
            offset = n - xs[i]
            acc = weights[i]
            for j in range(i):
                acc = acc * inv_signed[xs[j] + offset] % prime
            for j in range(i + 1, k):
                acc = acc * inv_signed[xs[j] + offset] % prime
            weights[i] = acc
        return tuple(weights)


@lru_cache(maxsize=64)
def get_eval_plan(prime: int, n: int) -> EvalPlan:
    """The process-wide shared :class:`EvalPlan` for ``(prime, n)``."""
    return EvalPlan(prime, n)


def set_plan_mode_override(mode: Optional[str]) -> None:
    """Force (``"scalar"``) or restore (``None``/``"auto"``) plan selection.

    Changing the override invalidates :func:`get_eval_plan`'s process-wide
    cache, so plans constructed under the previous policy are never served to
    code expecting the new one.  The cache is only cleared when the value
    actually changes -- repeated no-op calls keep the warm tables.
    """
    global _PLAN_MODE_OVERRIDE
    if mode == "auto":
        mode = None
    if mode not in (None, "scalar"):
        raise ValueError(
            f'plan-mode override must be None, "auto" or "scalar", got {mode!r}'
        )
    if mode != _PLAN_MODE_OVERRIDE:
        _PLAN_MODE_OVERRIDE = mode
        get_eval_plan.cache_clear()


@contextmanager
def plan_mode_override(mode: Optional[str]) -> Iterator[None]:
    """Scoped :func:`set_plan_mode_override` (restores the previous value)."""
    previous = _PLAN_MODE_OVERRIDE
    set_plan_mode_override(mode)
    try:
        yield
    finally:
        set_plan_mode_override(previous)


class CryptoPlane:
    """Per-network batched-crypto state: a shared plan plus bounded caches.

    One plane serves every party of a simulated network (it is interned on
    the :class:`~repro.net.network.Network` beside the session table), which
    is what amortises work *across dealers*: a RECROW broadcast by one party
    reaches ``n`` receivers, and with the plane each of them resolves the row
    through one dict hit instead of re-validating and re-evaluating it.

    Caches (all value-keyed, so sharing across parties is semantically
    invisible):

    * ``validate_row`` -- wire payload -> reduced trimmed row (or None for a
      malformed/over-degree payload), replacing the per-receiver coefficient
      scan of ``_validate_row_ints``;
    * ``row_evals`` -- trimmed row -> its evaluations at every party point,
      computed once per distinct row network-wide (one batched product) and
      turning every POINT/RECROW consistency check into a list index;
    * ``weights_for`` -- fixed reconstruction set -> Lagrange weights at
      zero, shared by the n parallel SVSS-Rec sessions of a coin flip.
    """

    __slots__ = (
        "plan",
        "prime",
        "n",
        "t",
        "row_cache",
        "eval_cache",
        "weight_cache",
        "stats",
    )

    def __init__(self, prime: int, n: int, t: int) -> None:
        self.plan = get_eval_plan(prime, n)
        self.prime = prime
        self.n = n
        self.t = t
        #: Cache hit/miss counters per cache, read by the metrics registry.
        #: Undercounts row hits slightly: the hottest handler (SVSSRec's
        #: RECROW path) probes ``row_cache`` directly, bypassing
        #: :meth:`validate_row_record` on a warm hit by design.
        self.stats: Dict[str, int] = {
            "row_hits": 0,
            "row_misses": 0,
            "eval_hits": 0,
            "eval_misses": 0,
            "weight_hits": 0,
            "weight_misses": 0,
        }
        #: Wire payload -> ``(trimmed row, evals at all party points)`` (or
        #: None for an invalid payload); public so the hottest handlers can
        #: resolve validation AND cross-point evaluation with one dict get.
        self.row_cache: Dict[Any, Optional[Tuple[Tuple[int, ...], List[int]]]] = {}
        #: Trimmed row -> its evaluations at every party point.
        self.eval_cache: Dict[Tuple[int, ...], List[int]] = {}
        #: Fixed reconstruction set -> Lagrange weights at zero.
        self.weight_cache: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

    # ------------------------------------------------------------------
    def _validate_uncached(self, coefficients: Any) -> Optional[Tuple[int, ...]]:
        if not isinstance(coefficients, (tuple, list)) or not all(
            isinstance(c, int) for c in coefficients
        ):
            return None
        prime = self.prime
        trimmed = poly_trim(tuple(c % prime for c in coefficients)) or (0,)
        if len(trimmed) - 1 > self.t:
            return None
        return trimmed

    def validate_row_record(
        self, coefficients: Any
    ) -> Optional[Tuple[Tuple[int, ...], List[int]]]:
        """Validate one wire row and return ``(trimmed, evals)`` (or None).

        The record bundles the validated coefficients with their evaluations
        at every party point -- every consumer of a valid row needs both, so
        the hot handlers resolve the whole thing through one cache probe.
        Same validity contract as the scalar ``_validate_row_ints`` check.
        """
        rows = self.row_cache
        try:
            cached = rows.get(coefficients, _MISSING)
        except TypeError:
            # Unhashable payload (e.g. a nested list): validate directly.
            self.stats["row_misses"] += 1
            trimmed = self._validate_uncached(coefficients)
            if trimmed is None:
                return None
            return trimmed, self.row_evals(trimmed)
        if cached is not _MISSING:
            self.stats["row_hits"] += 1
            return cached
        self.stats["row_misses"] += 1
        trimmed = self._validate_uncached(coefficients)
        record = None if trimmed is None else (trimmed, self.row_evals(trimmed))
        if len(rows) >= _PLANE_ROW_CACHE_LIMIT:
            rows.clear()
        rows[coefficients] = record
        return record

    def validate_row(self, coefficients: Any) -> Optional[Tuple[int, ...]]:
        """Validate one wire-format row (same contract as the scalar check)."""
        record = self.validate_row_record(coefficients)
        return None if record is None else record[0]

    def row_evals(self, row: Tuple[int, ...]) -> List[int]:
        """``row`` evaluated at every party point (cached per distinct row)."""
        evals = self.eval_cache
        values = evals.get(row)
        if values is None:
            self.stats["eval_misses"] += 1
            values = self.plan.eval_all_points(row)
            if len(evals) >= _PLANE_ROW_CACHE_LIMIT:
                evals.clear()
            evals[row] = values
        else:
            self.stats["eval_hits"] += 1
        return values

    def weights_for(self, pids: Tuple[int, ...]) -> Tuple[int, ...]:
        """Reconstruction weights for a fixed set of party ids (cached)."""
        weights = self.weight_cache
        values = weights.get(pids)
        if values is None:
            self.stats["weight_misses"] += 1
            values = self.plan.subset_weights(pids)
            if len(weights) >= _PLANE_WEIGHTS_CACHE_LIMIT:
                weights.clear()
            weights[pids] = values
        else:
            self.stats["weight_hits"] += 1
        return values

    def reconstruct_at_zero(self, pids: Tuple[int, ...], ys: Sequence[int]) -> int:
        """``f(0)`` from the shares of ``pids`` -- the SVSS-Rec completion map."""
        total = 0
        for weight, y in zip(self.weights_for(pids), ys):
            total += weight * y
        return total % self.prime


# ---------------------------------------------------------------------------
# Module-level batch entry points (thin veneers over the plan/plane).
# ---------------------------------------------------------------------------
def validate_rows(plane: CryptoPlane, rows: Sequence[Any]) -> List[bool]:
    """Validity mask for many wire-format rows (one cached check per row)."""
    validate = plane.validate_row
    return [validate(row) is not None for row in rows]


def eval_grid(plane: CryptoPlane, coeffs_list: Sequence[Sequence[int]], point: int) -> List[int]:
    """Evaluate many reduced-coefficient polynomials at one point, batched."""
    return plane.plan.eval_rows_at_point(coeffs_list, point % plane.prime)


def shamir_share_values_many(
    prime: int, coeffs_list: Sequence[Sequence[int]], n: int
) -> List[List[int]]:
    """Shamir shares at ``1..n`` for many polynomials with one batched product.

    Row ``i`` equals ``shamir_share_values(prime, coeffs_list[i], n)``; the
    dealer-side cost drops from ``k`` Horner sweeps to one matrix product on
    plans with a vectorised mode.
    """
    return get_eval_plan(prime, n).shares_many(coeffs_list)
