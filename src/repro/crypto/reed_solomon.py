"""Reed-Solomon decoding via the Berlekamp-Welch algorithm.

Shamir shares of a degree-``t`` polynomial form a Reed-Solomon codeword, so
robust reconstruction in the presence of up to ``e`` corrupted shares reduces
to decoding.  With ``n`` shares, Berlekamp-Welch corrects ``e`` errors as long
as ``n >= t + 1 + 2e`` -- exactly tight at the optimal-resilience point
``n = 3t + 1``, ``e = t``.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.crypto.field import Field, FieldElement
from repro.crypto.polynomial import Polynomial
from repro.errors import DecodingError


def _solve_linear_system(
    field: Field, matrix: List[List[FieldElement]], rhs: List[FieldElement]
) -> List[FieldElement] | None:
    """Solve ``matrix @ x = rhs`` by Gaussian elimination.

    Returns one solution (free variables set to zero) or None when the system
    is inconsistent.
    """
    rows = len(matrix)
    cols = len(matrix[0]) if rows else 0
    augmented = [list(row) + [rhs[r]] for r, row in enumerate(matrix)]
    pivot_cols: List[int] = []
    pivot_row = 0
    for col in range(cols):
        pivot = None
        for row in range(pivot_row, rows):
            if augmented[row][col].value != 0:
                pivot = row
                break
        if pivot is None:
            continue
        augmented[pivot_row], augmented[pivot] = augmented[pivot], augmented[pivot_row]
        inverse = augmented[pivot_row][col].inverse()
        augmented[pivot_row] = [entry * inverse for entry in augmented[pivot_row]]
        for row in range(rows):
            if row != pivot_row and augmented[row][col].value != 0:
                factor = augmented[row][col]
                augmented[row] = [
                    entry - factor * pivot_entry
                    for entry, pivot_entry in zip(augmented[row], augmented[pivot_row])
                ]
        pivot_cols.append(col)
        pivot_row += 1
        if pivot_row == rows:
            break
    # Check for inconsistency: a zero row with nonzero rhs.
    for row in range(pivot_row, rows):
        if all(entry.value == 0 for entry in augmented[row][:-1]) and augmented[row][-1].value != 0:
            return None
    solution = [field.zero()] * cols
    for row_index, col in enumerate(pivot_cols):
        solution[col] = augmented[row_index][-1]
    return solution


def berlekamp_welch(
    field: Field,
    points: Sequence[Tuple[FieldElement, FieldElement]],
    degree: int,
    max_errors: int,
) -> Polynomial:
    """Decode a degree-``degree`` polynomial from points with up to ``max_errors`` errors.

    Args:
        field: the field of the code.
        points: ``(x, y)`` pairs; x values must be distinct.
        degree: degree bound of the message polynomial.
        max_errors: number of corrupted points tolerated.

    Returns:
        The unique degree-``degree`` polynomial agreeing with all but at most
        ``max_errors`` of the points.

    Raises:
        DecodingError: if no such polynomial exists (too many errors) or the
            parameters are inconsistent.
    """
    n = len(points)
    if max_errors < 0:
        raise DecodingError("max_errors must be non-negative")
    if n < degree + 1 + 2 * max_errors:
        raise DecodingError(
            f"Berlekamp-Welch needs at least {degree + 1 + 2 * max_errors} points "
            f"for degree {degree} with {max_errors} errors; got {n}"
        )
    xs = [field(x) for x, _ in points]
    if len({x.value for x in xs}) != len(xs):
        raise DecodingError("decoding points must have distinct x values")

    if max_errors == 0:
        polynomial = Polynomial.interpolate(field, list(points[: degree + 1]))
        for x, y in points:
            if polynomial(x) != field(y):
                raise DecodingError("points are not on a single polynomial")
        return polynomial

    # Unknowns: E(x) = e0 + ... + e_{max_errors-1} x^{max_errors-1} + x^{max_errors}
    # (monic error locator) and Q(x) of degree degree + max_errors, satisfying
    # Q(x_i) = y_i * E(x_i) for every point.
    num_e = max_errors  # non-leading coefficients of E
    num_q = degree + max_errors + 1
    matrix: List[List[FieldElement]] = []
    rhs: List[FieldElement] = []
    for x_raw, y_raw in points:
        x = field(x_raw)
        y = field(y_raw)
        row: List[FieldElement] = []
        # Coefficients for E's unknowns: y * x^j for j in 0..max_errors-1.
        x_power = field.one()
        for _ in range(num_e):
            row.append(y * x_power)
            x_power = x_power * x
        leading = y * x_power  # y * x^max_errors moves to the RHS
        # Coefficients for Q's unknowns: -x^j.
        x_power = field.one()
        for _ in range(num_q):
            row.append(-x_power)
            x_power = x_power * x
        matrix.append(row)
        rhs.append(-leading)

    solution = _solve_linear_system(field, matrix, rhs)
    if solution is None:
        raise DecodingError("Berlekamp-Welch system is inconsistent (too many errors)")
    e_coeffs = solution[:num_e] + [field.one()]
    q_coeffs = solution[num_e:]
    error_locator = Polynomial(field, e_coeffs)
    q_polynomial = Polynomial(field, q_coeffs)
    quotient, remainder = q_polynomial.divmod(error_locator)
    if any(c.value != 0 for c in remainder.coefficients):
        raise DecodingError("error locator does not divide Q; too many errors")
    if quotient.degree > degree:
        raise DecodingError("decoded polynomial exceeds the expected degree")
    # Verify the decoding explains all but at most max_errors points.
    disagreements = sum(1 for x, y in points if quotient(x) != field(y))
    if disagreements > max_errors:
        raise DecodingError(
            f"decoded polynomial disagrees with {disagreements} points "
            f"(> {max_errors} allowed)"
        )
    return quotient


def correctable(n: int, degree: int) -> int:
    """Maximum number of errors correctable from ``n`` points of a degree-``degree`` poly."""
    return max(0, (n - degree - 1) // 2)
