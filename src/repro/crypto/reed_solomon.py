"""Reed-Solomon decoding via the Berlekamp-Welch algorithm.

Shamir shares of a degree-``t`` polynomial form a Reed-Solomon codeword, so
robust reconstruction in the presence of up to ``e`` corrupted shares reduces
to decoding.  With ``n`` shares, Berlekamp-Welch corrects ``e`` errors as long
as ``n >= t + 1 + 2e`` -- exactly tight at the optimal-resilience point
``n = 3t + 1``, ``e = t``.

The object-facing entry point unwraps its points to plain ints and runs the
whole decode (matrix build, Gaussian elimination, locator division,
verification) in :mod:`repro.crypto.kernels`; only the final polynomial is
wrapped back into field elements.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.crypto import kernels
from repro.crypto.field import Field, FieldElement
from repro.crypto.polynomial import Polynomial
from repro.errors import DecodingError


def berlekamp_welch(
    field: Field,
    points: Sequence[Tuple[FieldElement, FieldElement]],
    degree: int,
    max_errors: int,
) -> Polynomial:
    """Decode a degree-``degree`` polynomial from points with up to ``max_errors`` errors.

    Args:
        field: the field of the code.
        points: ``(x, y)`` pairs; x values must be distinct.
        degree: degree bound of the message polynomial.
        max_errors: number of corrupted points tolerated.

    Returns:
        The unique degree-``degree`` polynomial agreeing with all but at most
        ``max_errors`` of the points.

    Raises:
        DecodingError: if no such polynomial exists (too many errors) or the
            parameters are inconsistent.
    """
    if max_errors < 0:
        raise DecodingError("max_errors must be non-negative")
    raw = field.raw
    xs = [raw(x) for x, _ in points]
    ys = [raw(y) for _, y in points]
    coeffs = kernels.berlekamp_welch_raw(field.prime, xs, ys, degree, max_errors)
    return Polynomial._from_int_coeffs(field, coeffs)


def correctable(n: int, degree: int) -> int:
    """Maximum number of errors correctable from ``n`` points of a degree-``degree`` poly."""
    return max(0, (n - degree - 1) // 2)
