"""Symmetric bivariate polynomials over a prime field.

The shunning VSS (`repro.protocols.svss`) follows the classical bivariate
construction: the dealer embeds the secret as ``F(0, 0)`` of a random
*symmetric* bivariate polynomial of degree ``t`` in each variable, and hands
party ``i`` the row polynomial ``f_i(y) = F(i, y)``.  Symmetry gives the
pairwise consistency check ``f_i(j) = F(i, j) = F(j, i) = f_j(i)`` that
parties use to validate each other's shares.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.crypto import kernels
from repro.crypto.field import Field, FieldElement, IntoField
from repro.crypto.polynomial import Polynomial
from repro.errors import FieldError, InterpolationError


class SymmetricBivariatePolynomial:
    """A symmetric polynomial ``F(x, y)`` of degree ``t`` in each variable.

    Stored as the full ``(t+1) x (t+1)`` coefficient matrix ``c[i][j]`` with
    ``c[i][j] == c[j][i]``, i.e. ``F(x, y) = sum c[i][j] x^i y^j``.
    """

    def __init__(self, field: Field, coefficients: Sequence[Sequence[IntoField]]) -> None:
        self.field = field
        matrix = [[field(c) for c in row] for row in coefficients]
        size = len(matrix)
        for row in matrix:
            if len(row) != size:
                raise InterpolationError("coefficient matrix must be square")
        for i in range(size):
            for j in range(size):
                if matrix[i][j] != matrix[j][i]:
                    raise InterpolationError("coefficient matrix must be symmetric")
        self.coefficients: List[List[FieldElement]] = matrix
        #: Raw-int mirror of the coefficient matrix for the kernel fast paths
        #: (the object is treated as immutable after construction).
        self._ints: List[List[int]] = [[c.value for c in row] for row in matrix]

    # Construction ------------------------------------------------------
    @classmethod
    def random(
        cls,
        field: Field,
        degree: int,
        rng: random.Random,
        secret: IntoField | None = None,
    ) -> "SymmetricBivariatePolynomial":
        """A random symmetric bivariate polynomial with ``F(0,0) = secret``."""
        size = degree + 1
        matrix = [[field.zero() for _ in range(size)] for _ in range(size)]
        for i in range(size):
            for j in range(i, size):
                value = field.random(rng)
                matrix[i][j] = value
                matrix[j][i] = value
        if secret is not None:
            matrix[0][0] = field(secret)
        return cls(field, matrix)

    # Queries ------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree bound in each variable."""
        return len(self.coefficients) - 1

    @property
    def int_matrix(self) -> List[List[int]]:
        """The raw-int coefficient matrix (kernel-side mirror, do not mutate).

        This is what the batched plane's grid evaluation consumes when the
        SVSS dealer generates all ``n`` wire rows in one product.
        """
        return self._ints

    def __call__(self, x: IntoField, y: IntoField) -> FieldElement:
        """Evaluate ``F(x, y)`` (Horner in x of Horners in y, on raw ints)."""
        raw = self.field.raw
        value = kernels.bivariate_eval(self.field.prime, self._ints, raw(x), raw(y))
        return FieldElement(value, self.field)

    @property
    def secret(self) -> FieldElement:
        """``F(0, 0)``, the embedded secret."""
        return self.coefficients[0][0]

    def row(self, index: IntoField) -> Polynomial:
        """The row polynomial ``f_index(y) = F(index, y)`` handed to a party."""
        coeffs = kernels.bivariate_row(
            self.field.prime, self._ints, self.field.raw(index)
        )
        return Polynomial._from_int_coeffs(self.field, coeffs)

    def rows(self, n: int) -> List[Polynomial]:
        """Row polynomials for parties ``1..n`` (index 0 of the list is party 1)."""
        return [self.row(i) for i in range(1, n + 1)]

    # ------------------------------------------------------------------
    @classmethod
    def interpolate_from_rows(
        cls, field: Field, rows: Sequence[Tuple[IntoField, Polynomial]], degree: int
    ) -> "SymmetricBivariatePolynomial":
        """Reconstruct ``F`` from ``degree + 1`` row polynomials.

        Args:
            field: coefficient field.
            rows: pairs ``(i, f_i)`` of row index and row polynomial.
            degree: the degree bound ``t``.

        Raises:
            InterpolationError: if fewer than ``degree + 1`` rows are supplied
                or the rows are not consistent with a symmetric polynomial.
        """
        if len(rows) < degree + 1:
            raise InterpolationError(
                f"need {degree + 1} rows to reconstruct, got {len(rows)}"
            )
        selected = list(rows[: degree + 1])
        # For each coefficient position j of y, interpolate across x.  All
        # columns share the same x tuple, so the memoised Lagrange basis is
        # computed once and reused degree+1 times.
        prime = field.prime
        raw = field.raw
        xs = tuple(raw(x_value) for x_value, _ in selected)
        for _, row_poly in selected:
            if row_poly.field != field:
                raise FieldError("cannot coerce an element of a different field")
        row_ints = [row_poly.int_coefficients for _, row_poly in selected]
        matrix: List[List[int]] = [
            [0] * (degree + 1) for _ in range(degree + 1)
        ]
        for j in range(degree + 1):
            ys = [coeffs[j] if j < len(coeffs) else 0 for coeffs in row_ints]
            column_coeffs = kernels.interpolate(prime, xs, ys)
            for i in range(degree + 1):
                matrix[i][j] = column_coeffs[i] if i < len(column_coeffs) else 0
        # Symmetrise defensively: if the rows came from a genuine symmetric
        # polynomial this is a no-op; otherwise constructing the object would
        # raise, which is the behaviour we want for corrupted inputs.
        return cls(field, matrix)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SymmetricBivariatePolynomial):
            return NotImplemented
        return self.field == other.field and self.coefficients == other.coefficients

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"SymmetricBivariatePolynomial(degree={self.degree})"
