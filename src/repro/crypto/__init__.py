"""Information-theoretic primitives: field algebra and secret sharing."""

from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.crypto.field import Field, FieldElement, is_probable_prime
from repro.crypto.polynomial import Polynomial
from repro.crypto.reed_solomon import berlekamp_welch, correctable
from repro.crypto.shamir import (
    ShamirShare,
    additive_shares,
    reconstruct,
    reconstruct_robust,
    share_from_wire,
    share_secret,
    shares_to_wire,
    verify_share,
)

__all__ = [
    "Field",
    "FieldElement",
    "is_probable_prime",
    "Polynomial",
    "SymmetricBivariatePolynomial",
    "berlekamp_welch",
    "correctable",
    "ShamirShare",
    "additive_shares",
    "reconstruct",
    "reconstruct_robust",
    "share_from_wire",
    "share_secret",
    "shares_to_wire",
    "verify_share",
]
