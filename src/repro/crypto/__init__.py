"""Information-theoretic primitives: field algebra and secret sharing.

The object layer re-exported here is a veneer over the raw-integer fast
paths in :mod:`repro.crypto.kernels`.
"""

from repro.crypto import kernels

from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.crypto.field import Field, FieldElement, is_probable_prime
from repro.crypto.polynomial import Polynomial
from repro.crypto.reed_solomon import berlekamp_welch, correctable
from repro.crypto.shamir import (
    ShamirShare,
    additive_shares,
    reconstruct,
    reconstruct_robust,
    share_from_wire,
    share_secret,
    shares_to_wire,
    verify_share,
)

__all__ = [
    "kernels",
    "Field",
    "FieldElement",
    "is_probable_prime",
    "Polynomial",
    "SymmetricBivariatePolynomial",
    "berlekamp_welch",
    "correctable",
    "ShamirShare",
    "additive_shares",
    "reconstruct",
    "reconstruct_robust",
    "share_from_wire",
    "share_secret",
    "shares_to_wire",
    "verify_share",
]
