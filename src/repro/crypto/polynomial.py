"""Univariate polynomials over a prime field, with Lagrange interpolation.

These are the workhorse of the secret-sharing layer: a degree-``t`` polynomial
with ``f(0) = secret`` defines a Shamir sharing, and interpolation through
``t + 1`` points recovers it.

The class is a thin veneer over the raw-integer kernels in
:mod:`repro.crypto.kernels`: coefficients are mirrored as a plain int tuple at
construction time, every arithmetic operation runs on ints, and only the
results are wrapped back into :class:`FieldElement` objects.  Polynomials are
treated as immutable -- mutating ``coefficients`` in place is unsupported.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.crypto import kernels
from repro.crypto.field import Field, FieldElement, IntoField
from repro.errors import FieldError, InterpolationError


class Polynomial:
    """A polynomial ``c0 + c1 x + ... + cd x^d`` over a prime field.

    Coefficients are stored low-degree first with trailing zeros trimmed, so
    two equal polynomials always compare equal.
    """

    __slots__ = ("field", "coefficients", "_ints")

    def __init__(self, field: Field, coefficients: Iterable[IntoField]) -> None:
        self.field = field
        coeffs = [field(c) for c in coefficients]
        while len(coeffs) > 1 and coeffs[-1].value == 0:
            coeffs.pop()
        if not coeffs:
            coeffs = [field.zero()]
        self.coefficients: List[FieldElement] = coeffs
        self._ints: Tuple[int, ...] = tuple(c.value for c in coeffs)

    @classmethod
    def _from_int_coeffs(cls, field: Field, ints: Sequence[int]) -> "Polynomial":
        """Fast internal constructor for already-reduced int coefficients."""
        self = cls.__new__(cls)
        self.field = field
        trimmed = kernels.poly_trim(ints)
        self._ints = trimmed
        self.coefficients = [FieldElement(v, field) for v in trimmed]
        return self

    @property
    def int_coefficients(self) -> Tuple[int, ...]:
        """The coefficients as a plain int tuple (the kernel-side mirror)."""
        return self._ints

    # Construction ------------------------------------------------------
    @classmethod
    def zero(cls, field: Field) -> "Polynomial":
        """The zero polynomial."""
        return cls._from_int_coeffs(field, (0,))

    @classmethod
    def constant(cls, field: Field, value: IntoField) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls(field, [value])

    @classmethod
    def random(
        cls,
        field: Field,
        degree: int,
        rng: random.Random,
        constant_term: IntoField | None = None,
    ) -> "Polynomial":
        """A random polynomial of exactly the given degree bound.

        Args:
            field: the coefficient field.
            degree: the degree bound (the polynomial has ``degree + 1``
                coefficients; the leading ones may be zero, as is standard for
                secret sharing).
            rng: randomness source.
            constant_term: when given, fixes ``f(0)``.
        """
        if degree < 0:
            raise InterpolationError(f"degree must be non-negative, got {degree}")
        coeffs = [field.random(rng) for _ in range(degree + 1)]
        if constant_term is not None:
            coeffs[0] = field(constant_term)
        return cls(field, coeffs)

    @classmethod
    def interpolate(
        cls, field: Field, points: Sequence[Tuple[IntoField, IntoField]]
    ) -> "Polynomial":
        """Lagrange interpolation through ``points`` (x values must be distinct).

        Returns the unique polynomial of degree < len(points) through the
        points.  The Lagrange basis for a given set of x values is memoised in
        the kernel layer, so repeated reconstructions against the same party
        points cost one dot product per coefficient.

        Raises:
            InterpolationError: on duplicate x coordinates or empty input.
        """
        if not points:
            raise InterpolationError("cannot interpolate through zero points")
        raw = field.raw
        xs = tuple(raw(x) for x, _ in points)
        ys = [raw(y) for _, y in points]
        return cls._from_int_coeffs(field, kernels.interpolate(field.prime, xs, ys))

    # Queries ------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for constants, including zero)."""
        return len(self._ints) - 1

    def __call__(self, x: IntoField) -> FieldElement:
        """Evaluate via Horner's rule (on raw ints)."""
        value = kernels.horner(self.field.prime, self._ints, self.field.raw(x))
        return FieldElement(value, self.field)

    def eval_int(self, x: int) -> int:
        """Evaluate at a plain int, returning the raw int value.

        Same kernel as :meth:`__call__` without the FieldElement round-trip;
        the per-message consistency checks in SVSS live on this path.
        """
        return kernels.horner(self.field.prime, self._ints, x % self.field.prime)

    def __len__(self) -> int:
        return len(self._ints)

    def evaluate_at(self, xs: Iterable[IntoField]) -> List[FieldElement]:
        """Evaluate at several points."""
        field = self.field
        raw = field.raw
        values = kernels.eval_at_many(field.prime, self._ints, [raw(x) for x in xs])
        return [FieldElement(v, field) for v in values]

    def shares(self, n: int) -> Dict[int, FieldElement]:
        """Evaluate at the canonical party points ``1..n`` (Shamir shares)."""
        field = self.field
        values = kernels.shamir_share_values(field.prime, self._ints, n)
        return {i: FieldElement(v, field) for i, v in zip(range(1, n + 1), values)}

    @property
    def constant_term(self) -> FieldElement:
        """``f(0)``, the shared secret in Shamir's scheme."""
        return self.coefficients[0]

    # Arithmetic ----------------------------------------------------------
    def _check_same_field(self, other: "Polynomial") -> None:
        if other.field != self.field:
            raise FieldError("cannot mix elements of different fields")

    def __add__(self, other: "Polynomial") -> "Polynomial":
        self._check_same_field(other)
        return Polynomial._from_int_coeffs(
            self.field, kernels.poly_add(self.field.prime, self._ints, other._ints)
        )

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        self._check_same_field(other)
        negated = kernels.poly_scale(self.field.prime, other._ints, -1)
        return Polynomial._from_int_coeffs(
            self.field, kernels.poly_add(self.field.prime, self._ints, negated)
        )

    def __mul__(self, other: "Polynomial | FieldElement | int") -> "Polynomial":
        if isinstance(other, (FieldElement, int)):
            scalar = self.field.raw(other)
            return Polynomial._from_int_coeffs(
                self.field, kernels.poly_scale(self.field.prime, self._ints, scalar)
            )
        self._check_same_field(other)
        return Polynomial._from_int_coeffs(
            self.field, kernels.poly_mul(self.field.prime, self._ints, other._ints)
        )

    __rmul__ = __mul__

    def divmod(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Polynomial long division; returns ``(quotient, remainder)``."""
        self._check_same_field(divisor)
        quotient, remainder = kernels.poly_divmod(
            self.field.prime, self._ints, divisor._ints
        )
        return (
            Polynomial._from_int_coeffs(self.field, quotient),
            Polynomial._from_int_coeffs(self.field, remainder),
        )

    # Comparison ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.field == other.field and self._ints == other._ints

    def __hash__(self) -> int:
        return hash((self.field.prime, self._ints))

    def to_ints(self) -> List[int]:
        """Coefficients as plain integers (wire format)."""
        return list(self._ints)

    @classmethod
    def from_ints(cls, field: Field, values: Sequence[int]) -> "Polynomial":
        """Inverse of :meth:`to_ints`."""
        return cls(field, values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polynomial({self.to_ints()})"
