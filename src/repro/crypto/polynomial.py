"""Univariate polynomials over a prime field, with Lagrange interpolation.

These are the workhorse of the secret-sharing layer: a degree-``t`` polynomial
with ``f(0) = secret`` defines a Shamir sharing, and interpolation through
``t + 1`` points recovers it.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.crypto.field import Field, FieldElement, IntoField
from repro.errors import InterpolationError


class Polynomial:
    """A polynomial ``c0 + c1 x + ... + cd x^d`` over a prime field.

    Coefficients are stored low-degree first with trailing zeros trimmed, so
    two equal polynomials always compare equal.
    """

    def __init__(self, field: Field, coefficients: Iterable[IntoField]) -> None:
        self.field = field
        coeffs = [field(c) for c in coefficients]
        while len(coeffs) > 1 and coeffs[-1].value == 0:
            coeffs.pop()
        if not coeffs:
            coeffs = [field.zero()]
        self.coefficients: List[FieldElement] = coeffs

    # Construction ------------------------------------------------------
    @classmethod
    def zero(cls, field: Field) -> "Polynomial":
        """The zero polynomial."""
        return cls(field, [0])

    @classmethod
    def constant(cls, field: Field, value: IntoField) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls(field, [value])

    @classmethod
    def random(
        cls,
        field: Field,
        degree: int,
        rng: random.Random,
        constant_term: IntoField | None = None,
    ) -> "Polynomial":
        """A random polynomial of exactly the given degree bound.

        Args:
            field: the coefficient field.
            degree: the degree bound (the polynomial has ``degree + 1``
                coefficients; the leading ones may be zero, as is standard for
                secret sharing).
            rng: randomness source.
            constant_term: when given, fixes ``f(0)``.
        """
        if degree < 0:
            raise InterpolationError(f"degree must be non-negative, got {degree}")
        coeffs = [field.random(rng) for _ in range(degree + 1)]
        if constant_term is not None:
            coeffs[0] = field(constant_term)
        return cls(field, coeffs)

    @classmethod
    def interpolate(
        cls, field: Field, points: Sequence[Tuple[IntoField, IntoField]]
    ) -> "Polynomial":
        """Lagrange interpolation through ``points`` (x values must be distinct).

        Returns the unique polynomial of degree < len(points) through the
        points.

        Raises:
            InterpolationError: on duplicate x coordinates or empty input.
        """
        if not points:
            raise InterpolationError("cannot interpolate through zero points")
        xs = [field(x) for x, _ in points]
        ys = [field(y) for _, y in points]
        if len({x.value for x in xs}) != len(xs):
            raise InterpolationError("interpolation points must have distinct x values")
        result = cls.zero(field)
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            numerator = cls(field, [1])
            denominator = field.one()
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                numerator = numerator * cls(field, [-xj.value, 1])
                denominator = denominator * (xi - xj)
            result = result + numerator * (yi / denominator)
        return result

    # Queries ------------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree of the polynomial (0 for constants, including zero)."""
        return len(self.coefficients) - 1

    def __call__(self, x: IntoField) -> FieldElement:
        """Evaluate via Horner's rule."""
        x = self.field(x)
        acc = self.field.zero()
        for coefficient in reversed(self.coefficients):
            acc = acc * x + coefficient
        return acc

    def evaluate_at(self, xs: Iterable[IntoField]) -> List[FieldElement]:
        """Evaluate at several points."""
        return [self(x) for x in xs]

    def shares(self, n: int) -> Dict[int, FieldElement]:
        """Evaluate at the canonical party points ``1..n`` (Shamir shares)."""
        return {i: self(i) for i in range(1, n + 1)}

    @property
    def constant_term(self) -> FieldElement:
        """``f(0)``, the shared secret in Shamir's scheme."""
        return self.coefficients[0]

    # Arithmetic ----------------------------------------------------------
    def __add__(self, other: "Polynomial") -> "Polynomial":
        size = max(len(self.coefficients), len(other.coefficients))
        coeffs = []
        for index in range(size):
            a = self.coefficients[index] if index < len(self.coefficients) else self.field.zero()
            b = other.coefficients[index] if index < len(other.coefficients) else self.field.zero()
            coeffs.append(a + b)
        return Polynomial(self.field, coeffs)

    def __sub__(self, other: "Polynomial") -> "Polynomial":
        return self + (other * self.field(-1))

    def __mul__(self, other: "Polynomial | FieldElement | int") -> "Polynomial":
        if isinstance(other, (FieldElement, int)):
            scalar = self.field(other)
            return Polynomial(self.field, [c * scalar for c in self.coefficients])
        coeffs = [self.field.zero()] * (len(self.coefficients) + len(other.coefficients) - 1)
        for i, a in enumerate(self.coefficients):
            for j, b in enumerate(other.coefficients):
                coeffs[i + j] = coeffs[i + j] + a * b
        return Polynomial(self.field, coeffs)

    __rmul__ = __mul__

    def divmod(self, divisor: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Polynomial long division; returns ``(quotient, remainder)``."""
        if all(c.value == 0 for c in divisor.coefficients):
            raise InterpolationError("polynomial division by zero")
        remainder = list(self.coefficients)
        quotient = [self.field.zero()] * max(1, len(remainder) - len(divisor.coefficients) + 1)
        divisor_lead = divisor.coefficients[-1]
        divisor_degree = divisor.degree
        for index in range(len(remainder) - 1, divisor_degree - 1, -1):
            coefficient = remainder[index] / divisor_lead
            position = index - divisor_degree
            quotient[position] = coefficient
            for offset, dcoeff in enumerate(divisor.coefficients):
                remainder[position + offset] = remainder[position + offset] - coefficient * dcoeff
        return Polynomial(self.field, quotient), Polynomial(self.field, remainder)

    # Comparison ----------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.field == other.field and self.coefficients == other.coefficients

    def __hash__(self) -> int:
        return hash((self.field.prime, tuple(c.value for c in self.coefficients)))

    def to_ints(self) -> List[int]:
        """Coefficients as plain integers (wire format)."""
        return [c.value for c in self.coefficients]

    @classmethod
    def from_ints(cls, field: Field, values: Sequence[int]) -> "Polynomial":
        """Inverse of :meth:`to_ints`."""
        return cls(field, values)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Polynomial({self.to_ints()})"
