"""Prime-field arithmetic GF(p).

The paper's protocols are information-theoretic and work over any finite
field larger than the number of parties.  We implement a straightforward
prime field; elements are represented by :class:`FieldElement` wrappers so
that protocol code reads like the algebra in the paper while accidental
mixing of moduli raises immediately.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Union

from repro.errors import FieldError

IntoField = Union[int, "FieldElement"]


@lru_cache(maxsize=65536)
def is_probable_prime(value: int, rounds: int = 16) -> bool:
    """Miller-Rabin primality test (deterministic for 64-bit inputs)."""
    if value < 2:
        return False
    small_primes = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
    for prime in small_primes:
        if value % prime == 0:
            return value == prime
    d = value - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    # These witnesses are sufficient for all 64-bit integers.
    witnesses = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)[:rounds]
    for a in witnesses:
        x = pow(a, d, value)
        if x in (1, value - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % value
            if x == value - 1:
                break
        else:
            return False
    return True


#: Interned Field instances keyed by modulus: campaigns construct a Field per
#: worker/trial, and interning makes repeat construction a dict hit instead of
#: a Miller-Rabin run plus a fresh allocation.
_FIELD_INTERN: Dict[int, "Field"] = {}


@dataclass(frozen=True)
class Field:
    """A prime field GF(p).

    Instances are interned per modulus: ``Field(p) is Field(p)``.  Equality
    and hashing are by modulus either way, so the interning is purely a
    performance property (identity-fast comparisons, one primality check per
    modulus per process).
    """

    prime: int

    def __new__(cls, prime: int) -> "Field":
        if cls is Field:
            cached = _FIELD_INTERN.get(prime)
            if cached is not None:
                return cached
        return super().__new__(cls)

    def __post_init__(self) -> None:
        if self.prime < 2 or not is_probable_prime(self.prime):
            raise FieldError(f"field modulus must be prime, got {self.prime}")
        if type(self) is Field:
            _FIELD_INTERN.setdefault(self.prime, self)

    def __reduce__(self):
        # Route unpickling through __new__ so workers share the intern table.
        return (type(self), (self.prime,))

    # ------------------------------------------------------------------
    def __call__(self, value: IntoField) -> "FieldElement":
        """Coerce an integer (or element of this field) into the field."""
        if isinstance(value, FieldElement):
            if value.field != self:
                raise FieldError("cannot coerce an element of a different field")
            return value
        return FieldElement(int(value) % self.prime, self)

    def raw(self, value: IntoField) -> int:
        """Coerce to a plain int in ``[0, prime)`` without allocating an element.

        The unwrap used by the raw-integer kernels
        (:mod:`repro.crypto.kernels`); applies the same foreign-field check as
        :meth:`__call__`.
        """
        if isinstance(value, FieldElement):
            if value.field is not self and value.field != self:
                raise FieldError("cannot coerce an element of a different field")
            return value.value
        return int(value) % self.prime

    def zero(self) -> "FieldElement":
        """The additive identity."""
        return FieldElement(0, self)

    def one(self) -> "FieldElement":
        """The multiplicative identity."""
        return FieldElement(1, self)

    def random(self, rng: random.Random) -> "FieldElement":
        """A uniformly random field element drawn from ``rng``."""
        return FieldElement(rng.randrange(self.prime), self)

    def random_nonzero(self, rng: random.Random) -> "FieldElement":
        """A uniformly random nonzero field element."""
        return FieldElement(rng.randrange(1, self.prime), self)

    def elements(self, values: Iterable[IntoField]) -> List["FieldElement"]:
        """Coerce an iterable of integers into field elements."""
        return [self(v) for v in values]

    @property
    def order(self) -> int:
        """Number of elements in the field."""
        return self.prime

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"GF({self.prime})"


@dataclass(frozen=True)
class FieldElement:
    """An element of a prime field.  Supports ``+ - * / **`` and comparison."""

    value: int
    field: Field

    def _coerce(self, other: IntoField) -> "FieldElement":
        if isinstance(other, FieldElement):
            if other.field != self.field:
                raise FieldError("cannot mix elements of different fields")
            return other
        return self.field(other)

    # Arithmetic -------------------------------------------------------
    def __add__(self, other: IntoField) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement((self.value + other.value) % self.field.prime, self.field)

    __radd__ = __add__

    def __sub__(self, other: IntoField) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement((self.value - other.value) % self.field.prime, self.field)

    def __rsub__(self, other: IntoField) -> "FieldElement":
        return self._coerce(other) - self

    def __mul__(self, other: IntoField) -> "FieldElement":
        other = self._coerce(other)
        return FieldElement((self.value * other.value) % self.field.prime, self.field)

    __rmul__ = __mul__

    def __neg__(self) -> "FieldElement":
        return FieldElement((-self.value) % self.field.prime, self.field)

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises :class:`FieldError` for zero."""
        if self.value == 0:
            raise FieldError("zero has no multiplicative inverse")
        return FieldElement(pow(self.value, -1, self.field.prime), self.field)

    def __truediv__(self, other: IntoField) -> "FieldElement":
        return self * self._coerce(other).inverse()

    def __rtruediv__(self, other: IntoField) -> "FieldElement":
        return self._coerce(other) / self

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return self.inverse() ** (-exponent)
        return FieldElement(pow(self.value, exponent, self.field.prime), self.field)

    # Comparison / hashing ---------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return self.field == other.field and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.prime
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.value, self.field.prime))

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.value}"
