"""Shamir secret sharing over a prime field.

Used directly by the simple (non-shunning) AVSS baseline and the weak common
coin, and as the reconstruction backend of the shunning VSS.  Reconstruction
comes in two flavours: plain interpolation through ``t + 1`` shares, and
robust reconstruction that error-corrects up to ``t`` wrong shares via
Berlekamp-Welch when at least ``3t + 1`` shares are available.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.crypto import kernels
from repro.crypto.field import Field, FieldElement, IntoField
from repro.crypto.polynomial import Polynomial
from repro.errors import DecodingError, InterpolationError


@dataclass(frozen=True)
class ShamirShare:
    """One party's share: the evaluation of the sharing polynomial at ``index``."""

    index: int
    value: FieldElement


def share_secret(
    field: Field,
    secret: IntoField,
    n: int,
    t: int,
    rng: random.Random,
) -> Tuple[Polynomial, Dict[int, ShamirShare]]:
    """Create a ``(t+1)``-out-of-``n`` Shamir sharing of ``secret``.

    Returns the sharing polynomial (degree ``t``, ``f(0) = secret``) and the
    share of each party ``i`` in ``1..n``, namely ``f(i)``.
    """
    polynomial = Polynomial.random(field, t, rng, constant_term=secret)
    values = kernels.shamir_share_values(field.prime, polynomial.int_coefficients, n)
    shares = {
        i: ShamirShare(index=i, value=FieldElement(v, field))
        for i, v in zip(range(1, n + 1), values)
    }
    return polynomial, shares


def reconstruct(
    field: Field, shares: Iterable[ShamirShare], degree: int
) -> FieldElement:
    """Reconstruct the secret from exactly ``degree + 1`` (or more) shares.

    Plain interpolation -- all supplied shares are trusted.  Use
    :func:`reconstruct_robust` when some shares may be wrong.

    Raises:
        InterpolationError: with fewer than ``degree + 1`` shares or duplicate
            indices.
    """
    share_list = list(shares)
    if len(share_list) < degree + 1:
        raise InterpolationError(
            f"need {degree + 1} shares to reconstruct, got {len(share_list)}"
        )
    # Kernel fast path: with the Lagrange weights for these indices memoised
    # (party ids are fixed per run), reconstruction is a k-term dot product.
    selected = share_list[: degree + 1]
    prime = field.prime
    raw = field.raw
    xs = tuple(s.index % prime for s in selected)
    ys = [raw(s.value) for s in selected]
    return FieldElement(kernels.interpolate_at_zero(prime, xs, ys), field)


def reconstruct_robust(
    field: Field,
    shares: Iterable[ShamirShare],
    degree: int,
    max_errors: int,
) -> FieldElement:
    """Reconstruct tolerating up to ``max_errors`` corrupted shares.

    Uses Berlekamp-Welch decoding, which needs
    ``len(shares) >= degree + 1 + 2 * max_errors``.

    Raises:
        DecodingError: when decoding is impossible with the given parameters.
    """
    share_list = list(shares)
    needed = degree + 1 + 2 * max_errors
    if len(share_list) < needed:
        raise DecodingError(
            f"robust reconstruction of a degree-{degree} polynomial with "
            f"{max_errors} errors needs {needed} shares, got {len(share_list)}"
        )
    raw = field.raw
    coeffs = kernels.berlekamp_welch_raw(
        field.prime,
        [s.index % field.prime for s in share_list],
        [raw(s.value) for s in share_list],
        degree,
        max_errors,
    )
    return FieldElement(coeffs[0], field)


def verify_share(polynomial: Polynomial, share: ShamirShare) -> bool:
    """True when ``share`` lies on ``polynomial`` (dealer-side check)."""
    return polynomial(share.index) == share.value


def shares_to_wire(shares: Mapping[int, ShamirShare]) -> Dict[int, int]:
    """Serialise shares to plain integers for message payloads."""
    return {index: share.value.value for index, share in shares.items()}


def share_from_wire(field: Field, index: int, value: int) -> ShamirShare:
    """Deserialise one share received from the network."""
    return ShamirShare(index=index, value=field(value))


def additive_shares(
    field: Field, secret: IntoField, count: int, rng: random.Random
) -> List[FieldElement]:
    """Split ``secret`` into ``count`` additive shares (sum equals secret).

    Used by the toy AVSS in the lower-bound experiments, where the simplest
    possible hiding structure keeps the transcript space enumerable.
    """
    if count < 1:
        raise InterpolationError("additive sharing needs at least one share")
    secret_element = field(secret)
    shares = [field.random(rng) for _ in range(count - 1)]
    last = secret_element
    for share in shares:
        last = last - share
    shares.append(last)
    return shares
