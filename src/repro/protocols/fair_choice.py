"""FairChoice: almost-fair selection of one out of ``m`` indices (Algorithm 2).

The parties flip ``l`` strong common coins (``N = 2**l`` is the smallest power
of two at least ``2 m^2``), interpret the bits as a number ``r < N`` and output
``r mod m``.  Theorem 4.3: for any subset ``G`` of more than half the indices,
the output lands in ``G`` with probability at least 1/2, and all honest
parties output the same index.

``FBA`` uses this to pick which agreed party's input to adopt when inputs
diverge; because more than half of the agreed parties are honest, the fairness
guarantee turns into FBA's fair-validity property.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.analysis.binomial import fair_choice_bits, fair_choice_epsilon
from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.protocols.aba import CoinSource
from repro.protocols.coinflip import CoinFlip


class FairChoice(Protocol):
    """Algorithm 2: ``FairChoice(m)``.

    Start kwargs:
        m: the number of candidates (must be at least 3 and identical at all
            honest parties, as the paper requires).

    Output: an index in ``{0, ..., m-1}``, identical at every honest party.
    """

    def __init__(
        self,
        process: Process,
        session: SessionId,
        coinflip_rounds_override: Optional[int] = None,
        epsilon_override: Optional[float] = None,
        coin_source: Optional[CoinSource] = None,
    ) -> None:
        super().__init__(process, session)
        self.coinflip_rounds_override = coinflip_rounds_override
        self.epsilon_override = epsilon_override
        self.coin_source = coin_source
        self.m: Optional[int] = None
        self.bits: Optional[int] = None
        self.coin_bits: Dict[int, int] = {}

    @classmethod
    def factory(
        cls,
        coinflip_rounds_override: Optional[int] = None,
        epsilon_override: Optional[float] = None,
        coin_source: Optional[CoinSource] = None,
    ) -> Callable[[Process, SessionId], "FairChoice"]:
        """Protocol factory fixing the simulation-scale overrides."""
        def build(process: Process, session: SessionId) -> "FairChoice":
            return cls(
                process,
                session,
                coinflip_rounds_override=coinflip_rounds_override,
                epsilon_override=epsilon_override,
                coin_source=coin_source,
            )

        return build

    # ------------------------------------------------------------------
    def on_start(self, m: Optional[int] = None, **_: Any) -> None:
        if m is None or m < 3:
            raise ValueError("FairChoice requires the candidate count m >= 3")
        self.m = m
        self.bits = fair_choice_bits(m)
        epsilon = (
            self.epsilon_override
            if self.epsilon_override is not None
            else fair_choice_epsilon(m)
        )
        for index in range(self.bits):
            self.spawn(
                ("coin", index),
                CoinFlip.factory(
                    epsilon=epsilon,
                    rounds_override=self.coinflip_rounds_override,
                    coin_source=self.coin_source,
                ),
            )

    def on_message(self, sender: int, payload: tuple) -> None:
        # All communication happens in the CoinFlip children.
        return

    def on_child_complete(self, child: Protocol) -> None:
        if not isinstance(child, CoinFlip):
            return
        for key, instance in self.children.items():
            if instance is child and isinstance(key, tuple) and key[0] == "coin":
                self.coin_bits[key[1]] = int(child.output) & 1
                break
        self._maybe_complete()

    # ------------------------------------------------------------------
    def _maybe_complete(self) -> None:
        if self.finished or self.bits is None or self.m is None:
            return
        if len(self.coin_bits) < self.bits:
            return
        value = 0
        for index in range(self.bits):
            value = (value << 1) | self.coin_bits[index]
        self.complete(value % self.m)
