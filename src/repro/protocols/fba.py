"""FBA: multivalued Byzantine agreement with fair validity (Algorithm 3).

Every party A-Casts its input, the parties agree (via ``CommonSubset``) on a
set ``S`` of at least ``n - t`` parties whose broadcasts completed, and then:

* if more than half of the values broadcast by ``S`` are equal, that value is
  the output (this realises classic validity: unanimous honest inputs always
  win, because honest parties form a majority of ``S``);
* otherwise ``FairChoice(|S|)`` picks one member of ``S`` "almost fairly" and
  its broadcast value is the output.  Since more than half of ``S`` is honest,
  the output is some honest party's input with probability at least 1/2 --
  the paper's *fair validity* (Theorem 4.5), which it highlights as the first
  such guarantee in the information-theoretic asynchronous setting.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, FrozenSet, Optional

from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.protocols.aba import CoinSource, OracleCoinSource
from repro.protocols.acast import ACast
from repro.protocols.common_subset import CommonSubset
from repro.protocols.fair_choice import FairChoice


class FairByzantineAgreement(Protocol):
    """Algorithm 3: ``FBA``.

    Start kwargs:
        value: this party's (arbitrary, hashable) input value.

    Output: one value, identical at every honest party.
    """

    def __init__(
        self,
        process: Process,
        session: SessionId,
        coin_source: Optional[CoinSource] = None,
        coinflip_rounds_override: Optional[int] = None,
        epsilon_override: Optional[float] = None,
    ) -> None:
        super().__init__(process, session)
        self.coin_source = coin_source or OracleCoinSource()
        self.coinflip_rounds_override = coinflip_rounds_override
        self.epsilon_override = epsilon_override
        self.broadcast_values: Dict[int, Any] = {}
        self.subset: Optional[FrozenSet[int]] = None
        self._fair_choice_started = False

    @classmethod
    def factory(
        cls,
        coin_source: Optional[CoinSource] = None,
        coinflip_rounds_override: Optional[int] = None,
        epsilon_override: Optional[float] = None,
    ) -> Callable[[Process, SessionId], "FairByzantineAgreement"]:
        """Protocol factory fixing the coin source and simulation overrides."""
        def build(process: Process, session: SessionId) -> "FairByzantineAgreement":
            return cls(
                process,
                session,
                coin_source=coin_source,
                coinflip_rounds_override=coinflip_rounds_override,
                epsilon_override=epsilon_override,
            )

        return build

    # ------------------------------------------------------------------
    def on_start(self, value: Any = None, **_: Any) -> None:
        if value is None:
            raise ValueError("FBA requires an input value")
        for sender in range(self.n):
            kwargs = {"value": value} if sender == self.pid else {}
            self.spawn(("acast", sender), ACast.factory(sender), **kwargs)
        self.spawn(
            ("cs",),
            CommonSubset.factory(self.coin_source),
            k=self.params.quorum,
        )

    def on_message(self, sender: int, payload: tuple) -> None:
        # All communication happens in child protocols.
        return

    # ------------------------------------------------------------------
    def on_child_complete(self, child: Protocol) -> None:
        if isinstance(child, ACast):
            self._on_acast_complete(child)
        elif isinstance(child, CommonSubset):
            self.subset = frozenset(child.output)
            self._maybe_decide()
        elif isinstance(child, FairChoice):
            self._on_fair_choice_complete(int(child.output))

    def _on_acast_complete(self, child: ACast) -> None:
        self.broadcast_values[child.sender] = child.output
        subset_child = self.child(("cs",))
        if subset_child is not None:
            subset_child.set_predicate(child.sender)
        self._maybe_decide()

    # ------------------------------------------------------------------
    def _maybe_decide(self) -> None:
        if self.finished or self.subset is None:
            return
        if any(sender not in self.broadcast_values for sender in self.subset):
            return
        values = [self.broadcast_values[sender] for sender in self.subset]
        m = len(self.subset)
        counts = Counter(repr(value) for value in values)
        top_repr, top_count = counts.most_common(1)[0]
        if top_count > m / 2:
            for value in values:
                if repr(value) == top_repr:
                    self.complete(value)
                    return
        if not self._fair_choice_started:
            self._fair_choice_started = True
            self.spawn(
                ("fair_choice",),
                FairChoice.factory(
                    coinflip_rounds_override=self.coinflip_rounds_override,
                    epsilon_override=self.epsilon_override,
                    coin_source=self.coin_source,
                ),
                m=m,
            )

    def _on_fair_choice_complete(self, choice: int) -> None:
        if self.finished or self.subset is None:
            return
        # "Let j be the k'th biggest value in S, with 0 understood as the
        # biggest" -- sort the agreed party ids in descending order and pick
        # the chosen position.
        ranked = sorted(self.subset, reverse=True)
        chosen_party = ranked[choice % len(ranked)]
        self.complete(self.broadcast_values[chosen_party])
