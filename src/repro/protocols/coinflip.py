"""CoinFlip: the paper's strong common coin (Algorithm 1, Theorem 3.5).

The protocol runs ``k`` sequential iterations.  In iteration ``r`` every party
deals an SVSS sharing of a uniformly random bit, the parties agree (via
``CommonSubset``) on a set ``S_r`` of at least ``n - t`` dealers whose sharing
completed, reconstruct exactly those sharings and XOR the reconstructed bits
into the iteration's coin ``b'_r``.  After all ``k`` iterations each party
takes the majority of its iteration coins and feeds it into one final binary
Byzantine agreement, whose output is the coin.

Why this gives a *strong* coin: the SVSS hiding property means the adversary
must commit to ``S_r`` before learning any honest dealer's bit, so every
iteration whose SVSS instances behave is a fair flip; at most ``n^2``
iterations can be spoiled (each spoilage forces a fresh shunning event); and
the binomial concentration of Appendix D shows ``k`` fair flips out-vote the
``n^2`` spoiled ones with probability at least ``1/2 - eps`` for either
outcome.  The final BA guarantees all honest parties output the *same* bit --
the property a weak coin lacks.

The paper's ``k`` is ``4*ceil((e/(eps*pi))^2 n^4)`` -- astronomically large for
simulation (see DESIGN.md).  ``rounds_override`` substitutes a smaller ``k``;
the analysis module reports the theoretical value alongside.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Optional

from repro.analysis.binomial import coinflip_iterations
from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.protocols.aba import BinaryAgreement, CoinSource, OracleCoinSource
from repro.protocols.common_subset import CommonSubset
from repro.protocols.svss import ShareState, SVSSRec, SVSSShare


class _Iteration:
    """Book-keeping for one CoinFlip iteration at one party."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.share_states: Dict[int, ShareState] = {}
        self.subset: Optional[FrozenSet[int]] = None
        self.rec_spawned: set[int] = set()
        self.rec_values: Dict[int, int] = {}
        self.coin: Optional[int] = None


class CoinFlip(Protocol):
    """Algorithm 1: ``CoinFlip(eps)``.

    Start kwargs: none (the bias and iteration count are fixed by the factory).

    Output: a bit in ``{0, 1}``, identical at every honest party.
    """

    def __init__(
        self,
        process: Process,
        session: SessionId,
        epsilon: float = 0.25,
        rounds_override: Optional[int] = None,
        coin_source: Optional[CoinSource] = None,
    ) -> None:
        super().__init__(process, session)
        self.epsilon = epsilon
        self.coin_source = coin_source or OracleCoinSource()
        self.theoretical_rounds = coinflip_iterations(epsilon, self.n)
        self.rounds = rounds_override or self.theoretical_rounds
        self.iterations: Dict[int, _Iteration] = {}
        self.current_iteration = 0
        self._ba_started = False

    @classmethod
    def factory(
        cls,
        epsilon: float = 0.25,
        rounds_override: Optional[int] = None,
        coin_source: Optional[CoinSource] = None,
    ) -> Callable[[Process, SessionId], "CoinFlip"]:
        """Protocol factory fixing the bias, iteration override and coin source."""
        def build(process: Process, session: SessionId) -> "CoinFlip":
            return cls(
                process,
                session,
                epsilon=epsilon,
                rounds_override=rounds_override,
                coin_source=coin_source,
            )

        return build

    # ------------------------------------------------------------------
    def on_start(self, **_: Any) -> None:
        self._begin_iteration(0)

    def on_message(self, sender: int, payload: tuple) -> None:
        # All communication happens in child protocols.
        return

    # ------------------------------------------------------------------
    def _begin_iteration(self, index: int) -> None:
        self.current_iteration = index
        self.annotate_phase(f"iter-{index}")
        iteration = self.iterations.setdefault(index, _Iteration(index))
        my_bit = self.rng.randrange(2)
        for dealer in range(self.n):
            kwargs = {"value": my_bit} if dealer == self.pid else {}
            self.spawn(("share", index, dealer), SVSSShare.factory(dealer), **kwargs)
        self.spawn(
            ("cs", index),
            CommonSubset.factory(self.coin_source),
            k=self.params.quorum,
        )
        # Shares may already have completed synchronously (not possible with
        # network messaging, but keeps the logic uniform).
        self._sync_predicate(iteration)

    def _sync_predicate(self, iteration: _Iteration) -> None:
        subset_child = self.child(("cs", iteration.index))
        if subset_child is None:
            return
        for dealer in iteration.share_states:
            subset_child.set_predicate(dealer)

    # ------------------------------------------------------------------
    def on_child_complete(self, child: Protocol) -> None:
        key = self._key_of(child)
        if key is None:
            return
        if key[0] == "share":
            self._on_share_complete(key[1], key[2], child)
        elif key[0] == "cs":
            self._on_subset_complete(key[1], child)
        elif key[0] == "rec":
            self._on_rec_complete(key[1], key[2], child)
        elif key[0] == "final_ba":
            self.complete(int(child.output))

    def _key_of(self, child: Protocol) -> Optional[tuple]:
        # Children record their spawn key, so mapping a completion back to
        # (kind, iteration, dealer) is O(1); a CoinFlip at n=64 owns hundreds
        # of children per iteration, which made the old scan quadratic in n.
        key = child.spawn_key
        if key is not None and child.parent is self:
            return key
        for candidate, instance in self.children.items():
            if instance is child:
                return candidate if isinstance(candidate, tuple) else (candidate,)
        return None

    # ------------------------------------------------------------------
    def _on_share_complete(self, index: int, dealer: int, child: Protocol) -> None:
        iteration = self.iterations.setdefault(index, _Iteration(index))
        iteration.share_states[dealer] = child.output
        subset_child = self.child(("cs", index))
        if subset_child is not None:
            subset_child.set_predicate(dealer)
        self._maybe_reconstruct(iteration)

    def _on_subset_complete(self, index: int, child: Protocol) -> None:
        iteration = self.iterations.setdefault(index, _Iteration(index))
        iteration.subset = frozenset(child.output)
        self._maybe_reconstruct(iteration)

    def _maybe_reconstruct(self, iteration: _Iteration) -> None:
        if iteration.subset is None:
            return
        for dealer in sorted(iteration.subset):
            if dealer in iteration.rec_spawned:
                continue
            share_state = iteration.share_states.get(dealer)
            if share_state is None:
                # Our SVSS-Share for this dealer has not completed yet;
                # Definition 3.2's termination property guarantees it will.
                continue
            iteration.rec_spawned.add(dealer)
            self.spawn(
                ("rec", iteration.index, dealer),
                SVSSRec.factory(dealer),
                share=share_state,
            )
        self._maybe_finish_iteration(iteration)

    def _on_rec_complete(self, index: int, dealer: int, child: Protocol) -> None:
        iteration = self.iterations.setdefault(index, _Iteration(index))
        iteration.rec_values[dealer] = int(child.output)
        self._maybe_finish_iteration(iteration)

    def _maybe_finish_iteration(self, iteration: _Iteration) -> None:
        if iteration.coin is not None or iteration.subset is None:
            return
        if any(dealer not in iteration.rec_values for dealer in iteration.subset):
            return
        coin = 0
        for dealer in iteration.subset:
            coin ^= iteration.rec_values[dealer] & 1
        iteration.coin = coin
        if iteration.index != self.current_iteration:
            return
        if iteration.index + 1 < self.rounds:
            self._begin_iteration(iteration.index + 1)
        else:
            self._start_final_agreement()

    # ------------------------------------------------------------------
    def _start_final_agreement(self) -> None:
        if self._ba_started:
            return
        self._ba_started = True
        ones = sum(
            1 for iteration in self.iterations.values() if iteration.coin == 1
        )
        majority = 1 if 2 * ones > self.rounds else 0
        self.spawn(
            ("final_ba",),
            BinaryAgreement.factory(self.coin_source),
            value=majority,
        )

    # ------------------------------------------------------------------
    @property
    def iteration_coins(self) -> Dict[int, Optional[int]]:
        """Per-iteration coins computed so far (diagnostics for benchmarks)."""
        return {index: it.coin for index, it in self.iterations.items()}
