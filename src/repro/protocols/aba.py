"""Almost-surely terminating binary asynchronous Byzantine agreement.

The paper uses (Definition 3.3) a binary BA protocol with Termination,
Validity and Correctness, citing Abraham-Dolev-Halpern [2] for an
almost-surely terminating construction with polynomial expected round count.
We implement the standard common-coin-based binary ABA (the
Mostefaoui-Moumen-Raynal structure: BVAL / AUX / coin rounds), parameterised
by a *coin source*:

* :class:`OracleCoinSource` -- a perfect common coin derived from a seed
  shared by all parties.  This is the default for simulations: the BA
  substrate is assumed by the paper, and the oracle keeps runs fast while
  exercising all agreement logic.
* :class:`LocalCoinSource` -- each party flips its own coin (Ben-Or '83
  style); almost-surely terminating but with exponential expected time.
  Used as a baseline in the substrate benchmarks.
* :class:`ProtocolCoinSource` -- runs a real coin protocol (for example the
  SVSS-based weak coin, or the paper's own CoinFlip) as a sub-protocol per
  round: the fully information-theoretic stack.

Safety (validity and agreement) never depends on the coin; only expected
round count does.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Optional, Set

from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol


class CoinSource(ABC):
    """Provides the per-round common coin used by :class:`BinaryAgreement`."""

    @abstractmethod
    def immediate(self, protocol: Protocol, round_index: int) -> Optional[int]:
        """Return the coin for ``round_index`` if available without interaction."""

    def protocol_factory(
        self, protocol: Protocol, round_index: int
    ) -> Callable[[Process, SessionId], Protocol]:
        """Factory for a coin sub-protocol (used when :meth:`immediate` is None)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not provide a protocol-based coin"
        )


class OracleCoinSource(CoinSource):
    """A perfect common coin: identical, unbiased and unpredictable-enough bits
    derived from ``(seed, session, round)``.  All parties share the source, so
    they observe the same coin value -- the ideal functionality assumed of the
    BA substrate."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed

    def immediate(self, protocol: Protocol, round_index: int) -> Optional[int]:
        digest = hashlib.sha256(
            repr((self.seed, tuple(protocol.session), round_index)).encode()
        ).digest()
        return digest[0] & 1


class LocalCoinSource(CoinSource):
    """Each party flips an independent local coin (Ben-Or style)."""

    def immediate(self, protocol: Protocol, round_index: int) -> Optional[int]:
        return protocol.rng.randrange(2)


class ProtocolCoinSource(CoinSource):
    """Runs ``coin_factory()`` as a sub-protocol for every round's coin.

    The sub-protocol must complete with an integer output; its parity is the
    coin.  Example: ``ProtocolCoinSource(WeakCommonCoin.factory)``.
    """

    def __init__(
        self, coin_factory: Callable[[], Callable[[Process, SessionId], Protocol]]
    ) -> None:
        self.coin_factory = coin_factory

    def immediate(self, protocol: Protocol, round_index: int) -> Optional[int]:
        return None

    def protocol_factory(
        self, protocol: Protocol, round_index: int
    ) -> Callable[[Process, SessionId], Protocol]:
        return self.coin_factory()


class _RoundVotes:
    """Flat per-round vote bookkeeping for one :class:`BinaryAgreement` round.

    The seed kept six ``defaultdict`` forests keyed by round number (about ten
    container allocations per BinaryAgreement instance before the first
    message); one slotted record per round replaces them, so a delivery does a
    single round lookup and then touches plain attributes.  The incremental
    AUX counters are carried over unchanged.
    """

    __slots__ = (
        "bval_sent0",
        "bval_sent1",
        "bvals0",
        "bvals1",
        "bin0",
        "bin1",
        "aux_sent",
        "aux_from",
        "aux_count0",
        "aux_count1",
    )

    def __init__(self) -> None:
        #: Whether this party already broadcast BVAL(value) for the round.
        self.bval_sent0 = False
        self.bval_sent1 = False
        #: Senders supporting each BVAL value.
        self.bvals0: Set[int] = set()
        self.bvals1: Set[int] = set()
        #: Whether each value entered bin_values (an n - t BVAL quorum).
        self.bin0 = False
        self.bin1 = False
        #: Whether this party already broadcast its AUX vote.
        self.aux_sent = False
        #: Senders whose AUX vote was recorded (first vote wins).
        self.aux_from: Set[int] = set()
        #: Incremental per-value AUX sender counts.
        self.aux_count0 = 0
        self.aux_count1 = 0


class BinaryAgreement(Protocol):
    """Binary asynchronous Byzantine agreement (Definition 3.3).

    Start kwargs:
        value: this party's binary input.

    Output: the agreed bit.

    The protocol keeps participating after deciding so that slower parties can
    still terminate, as the paper requires of all its sub-protocols.
    """

    def __init__(
        self, process: Process, session: SessionId, coin_source: CoinSource
    ) -> None:
        super().__init__(process, session)
        self.coin_source = coin_source
        self.est: Optional[int] = None
        self.round = 0
        self.decided: Optional[int] = None
        #: round -> flat vote record (see :class:`_RoundVotes`).
        self._rounds: Dict[int, _RoundVotes] = {}
        self._coins: Dict[int, int] = {}
        self._coin_requested: Set[int] = set()
        self._dones: Dict[int, Set[int]] = {0: set(), 1: set()}
        self._done_sent = False
        self.halted = False
        # Quorum thresholds, hoisted off the per-message paths.
        self._t1 = self.t + 1
        self._quorum = self.n - self.t

    def _round(self, round_index: int) -> _RoundVotes:
        votes = self._rounds.get(round_index)
        if votes is None:
            votes = self._rounds[round_index] = _RoundVotes()
        return votes

    @classmethod
    def factory(
        cls, coin_source: CoinSource
    ) -> Callable[[Process, SessionId], "BinaryAgreement"]:
        """Protocol factory fixing the coin source."""
        def build(process: Process, session: SessionId) -> "BinaryAgreement":
            return cls(process, session, coin_source)

        return build

    # ------------------------------------------------------------------
    def on_start(self, value: Any = 0, **_: Any) -> None:
        self.est = 1 if value else 0
        self.annotate_phase(f"round-{self.round}")
        self._broadcast_bval(self.round, self.est)
        # Messages (and even whole thresholds) may have been buffered and
        # replayed before start -- for example when this party joins a
        # CommonSubset BA late.  Re-evaluate progress immediately.
        self._try_advance(self.round)

    def on_message(self, sender: int, payload: tuple) -> None:
        # Dispatch ordered by message frequency (BVAL > AUX > DONE); the
        # branches are mutually exclusive on the kind tag, so the order is
        # behaviourally irrelevant.
        if not payload:
            return
        kind = payload[0]
        if kind == "BVAL":
            if not self.halted and len(payload) == 3:
                self._on_bval(sender, payload[1], payload[2])
        elif kind == "AUX":
            if not self.halted and len(payload) == 3:
                self._on_aux(sender, payload[1], payload[2])
        elif kind == "DONE" and len(payload) == 2:
            self._on_done(sender, payload[1])

    def on_child_complete(self, child: Protocol) -> None:
        # Protocol-based coins complete here; the child key is ("coin", round).
        for key, instance in self.children.items():
            if instance is child and isinstance(key, tuple) and key and key[0] == "coin":
                round_index = key[1]
                self._coins[round_index] = int(child.output) & 1
                self._try_advance(round_index)
                return

    # ------------------------------------------------------------------
    def _broadcast_bval(self, round_index: int, value: int) -> None:
        votes = self._round(round_index)
        if value == 0:
            if votes.bval_sent0:
                return
            votes.bval_sent0 = True
        else:
            if votes.bval_sent1:
                return
            votes.bval_sent1 = True
        self.broadcast("BVAL", round_index, value)

    def _on_bval(self, sender: int, round_index: Any, value: Any) -> None:
        if not self._valid_round_value(round_index, value):
            return
        votes = self._round(round_index)
        if value == 0:
            supporters = votes.bvals0
        else:
            supporters = votes.bvals1
        supporters.add(sender)
        count = len(supporters)
        if count >= self._t1 and not (
            votes.bval_sent0 if value == 0 else votes.bval_sent1
        ):
            # Amplification: at least one honest party proposed this value.
            self._broadcast_bval(round_index, value)
        if count >= self._quorum and not (votes.bin0 if value == 0 else votes.bin1):
            if value == 0:
                votes.bin0 = True
            else:
                votes.bin1 = True
            self._maybe_send_aux(round_index)
            self._try_advance(round_index)

    def _on_aux(self, sender: int, round_index: Any, value: Any) -> None:
        if not self._valid_round_value(round_index, value):
            return
        votes = self._round(round_index)
        if sender not in votes.aux_from:
            votes.aux_from.add(sender)
            if value == 0:
                votes.aux_count0 += 1
            else:
                votes.aux_count1 += 1
        self._try_advance(round_index)

    @staticmethod
    def _valid_round_value(round_index: Any, value: Any) -> bool:
        return isinstance(round_index, int) and round_index >= 0 and value in (0, 1)

    def _maybe_send_aux(self, round_index: int) -> None:
        if round_index != self.round:
            return
        votes = self._round(round_index)
        if votes.aux_sent:
            return
        if not (votes.bin0 or votes.bin1) or not self.started:
            return
        votes.aux_sent = True
        value = 0 if votes.bin0 else 1
        self.broadcast("AUX", round_index, value)

    # ------------------------------------------------------------------
    def _try_advance(self, round_index: int) -> None:
        if self.est is None or round_index != self.round:
            return
        self._maybe_send_aux(round_index)
        votes = self._round(round_index)
        if not votes.aux_sent:
            return
        # An AUX vote is *accepted* once its value entered bin_values.  The
        # per-value sender counts are maintained incrementally by _on_bval /
        # _on_aux, so the tally below reads two counters -- equivalent to the
        # original rebuild of the accepted {sender: value} dict.
        accepted0 = votes.bin0 and votes.aux_count0 > 0
        accepted1 = votes.bin1 and votes.aux_count1 > 0
        total = (votes.aux_count0 if accepted0 else 0) + (
            votes.aux_count1 if accepted1 else 0
        )
        if total < self._quorum:
            return
        if round_index not in self._coins:
            if round_index not in self._coin_requested:
                self._coin_requested.add(round_index)
                self._request_coin(round_index)
            if round_index not in self._coins:
                return
        coin = self._coins[round_index]
        if accepted0 != accepted1:
            value = 0 if accepted0 else 1
            self.est = value
            if value == coin and self.decided is None:
                self._decide(value)
        else:
            # Both values accepted (total >= quorum rules out neither).
            self.est = coin
        if self.halted:
            return
        self.round += 1
        self.annotate_phase(f"round-{self.round}")
        self._broadcast_bval(self.round, self.est)
        # Messages for the new round may already have arrived.
        self._try_advance(self.round)

    # ------------------------------------------------------------------
    # Termination convergence: a decided party announces DONE; t+1 DONE
    # announcements for a value let any party adopt it (at least one honest
    # party decided it), and n-t announcements let a party halt outright.
    # This keeps the "continue participating so laggards terminate" guarantee
    # without running coin rounds forever.
    # ------------------------------------------------------------------
    def _decide(self, value: int) -> None:
        if self.decided is None:
            self.decided = value
            if not self._done_sent:
                self._done_sent = True
                self.broadcast("DONE", value)
            self.complete(value)

    def _on_done(self, sender: int, value: Any) -> None:
        if value not in (0, 1):
            return
        dones = self._dones[value]
        dones.add(sender)
        if len(dones) >= self._t1 and self.decided is None:
            self._decide(value)
        if len(dones) >= self._quorum and self.decided == value:
            self.halted = True

    def _request_coin(self, round_index: int) -> None:
        bit = self.coin_source.immediate(self, round_index)
        if bit is not None:
            self._coins[round_index] = bit
            return
        factory = self.coin_source.protocol_factory(self, round_index)
        self.spawn(("coin", round_index), factory)
