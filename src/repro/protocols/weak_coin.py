"""A weak common coin built from SVSS.

This is the baseline primitive the paper contrasts its *strong* common coin
against (Section 3): in a weak coin, with constant probability different
honest parties may output different values, and the adversary may bias some
flips outright.  The construction here follows the classic recipe used by the
almost-surely terminating BA line of work [2]: every party deals an SVSS of a
random bit, each party fixes the set of the first ``n - t`` sharings it
completed, reconstructs those, and outputs the XOR of the reconstructed bits.

Because different parties may fix different sets, outputs can differ -- that
disagreement probability is exactly what experiment E2 measures against the
strong coin of ``repro.protocols.coinflip``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set

from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.protocols.svss import ShareState, SVSSRec, SVSSShare


class WeakCommonCoin(Protocol):
    """One weak-coin flip.

    Start kwargs: none.

    Output: a bit in ``{0, 1}``.  Honest parties may disagree with constant
    probability; see the module docstring.
    """

    __slots__ = ("attached", "share_states", "reconstructed", "_rec_spawned", "_awaiting")

    def __init__(self, process: Process, session: SessionId) -> None:
        super().__init__(process, session)
        self.attached: Optional[List[int]] = None
        self.share_states: Dict[int, ShareState] = {}
        self.reconstructed: Dict[int, int] = {}
        self._rec_spawned: Set[int] = set()
        #: Attached dealers whose reconstruction is still outstanding (None
        #: until the attached set is fixed); an O(1) completion check instead
        #: of rescanning the attached list per child completion.
        self._awaiting: Optional[Set[int]] = None

    @classmethod
    def factory(cls) -> Callable[[Process, SessionId], "WeakCommonCoin"]:
        """Protocol factory (no configuration needed)."""
        def build(process: Process, session: SessionId) -> "WeakCommonCoin":
            return cls(process, session)

        return build

    # ------------------------------------------------------------------
    def on_start(self, **_: Any) -> None:
        my_bit = self.rng.randrange(2)
        for dealer in range(self.n):
            kwargs = {"value": my_bit} if dealer == self.pid else {}
            self.spawn(("share", dealer), SVSSShare.factory(dealer), **kwargs)

    def on_child_complete(self, child: Protocol) -> None:
        if isinstance(child, SVSSShare):
            self._on_share_complete(child)
        elif isinstance(child, SVSSRec):
            self._on_rec_complete(child)

    # ------------------------------------------------------------------
    def _on_share_complete(self, child: SVSSShare) -> None:
        dealer = child.dealer
        self.share_states[dealer] = child.output
        if self.attached is None and len(self.share_states) >= self.n - self.t:
            # Fix the set of sharings this party will combine into its coin.
            self.attached = sorted(self.share_states)[: self.n - self.t]
            self._awaiting = set(self.attached) - self.reconstructed.keys()
        # Reconstruct every sharing we complete, not only the attached ones:
        # other parties may have attached a different set and need our help
        # to reconstruct it (termination of SVSS-Rec requires t+1 honest
        # participants).
        self._spawn_rec(dealer)
        self._maybe_finish()

    def _spawn_rec(self, dealer: int) -> None:
        if dealer in self._rec_spawned:
            return
        self._rec_spawned.add(dealer)
        self.spawn(
            ("rec", dealer),
            SVSSRec.factory(dealer),
            share=self.share_states[dealer],
        )

    def _on_rec_complete(self, child: SVSSRec) -> None:
        dealer = child.dealer
        self.reconstructed[dealer] = int(child.output)
        awaiting = self._awaiting
        if awaiting is not None:
            awaiting.discard(dealer)
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.finished or self.attached is None or self._awaiting:
            return
        coin = 0
        for dealer in self.attached:
            coin ^= self.reconstructed[dealer] & 1
        self.complete(coin)
