"""Protocol implementations: substrates and the paper's contributions."""

from repro.protocols.aba import (
    BinaryAgreement,
    CoinSource,
    LocalCoinSource,
    OracleCoinSource,
    ProtocolCoinSource,
)
from repro.protocols.acast import ACast
from repro.protocols.coinflip import CoinFlip
from repro.protocols.common_subset import CommonSubset
from repro.protocols.fair_choice import FairChoice
from repro.protocols.fba import FairByzantineAgreement
from repro.protocols.svss import ShareState, SVSSRec, SVSSShare, party_point
from repro.protocols.weak_coin import WeakCommonCoin

__all__ = [
    "ACast",
    "BinaryAgreement",
    "CoinSource",
    "LocalCoinSource",
    "OracleCoinSource",
    "ProtocolCoinSource",
    "CoinFlip",
    "CommonSubset",
    "FairChoice",
    "FairByzantineAgreement",
    "ShareState",
    "SVSSRec",
    "SVSSShare",
    "party_point",
    "WeakCommonCoin",
]
