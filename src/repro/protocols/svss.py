"""SVSS: shunning verifiable secret sharing (Definition 3.2).

The paper builds its strong common coin from the *shunning* VSS of Abraham,
Dolev and Halpern (PODC'08).  SVSS weakens full AVSS exactly enough to escape
the Section-2 lower bound: instead of unconditional binding it guarantees
**binding or shunning** -- whenever reconstruction would disagree, some party
starts shunning another party, and fewer than ``n^2`` shunning events can ever
occur, so at most ``n^2`` SVSS instances can "fail".

This module implements the pair of protocols

* :class:`SVSSShare` -- the dealer embeds the secret in a random symmetric
  bivariate polynomial ``F`` of degree ``t`` and sends party ``i`` its row
  ``f_i(y) = F(alpha_i, y)``.  Parties cross-check pairwise points
  (``f_i(alpha_j) = f_j(alpha_i)``), send ``READY`` once ``n - t`` points are
  consistent with their row and complete on ``n - t`` ``READY`` messages.
  Parties that never received a row from a (faulty) dealer recover it from the
  points of ``READY`` senders, which keeps the termination property
  "one honest completion implies all honest completions".
* :class:`SVSSRec` -- parties broadcast their rows; a received row is accepted
  if it matches the receiver's own row at the receiver's index, otherwise the
  sender is shunned.  ``t + 1`` accepted rows reconstruct the secret.

Shunning is triggered by provable misbehaviour (equivocation, malformed
payloads) and by row/point inconsistencies during reconstruction.  Relative to
ADH'08 the blame-assignment logic is simplified: with a *faulty dealer* an
inconsistency may cause an honest party to be shunned.  This preserves every
property the CoinFlip analysis uses (binding-or-shun, fewer than ``n^2`` shun
events, validity and hiding for honest dealers) and is documented in
DESIGN.md as a substitution.

Hot-path design (SVSS messages dominate every coin/agreement trial):

* **Raw-int rows** -- ROW/RECROW payloads are validated, compared and
  evaluated as plain reduced int tuples; a :class:`Polynomial` object is only
  built lazily, once, when a completed :class:`ShareState` needs it.
* **Cached party-point evaluations** -- each known row is evaluated at all
  ``n`` party points once (:func:`repro.crypto.kernels.eval_at_many`), so the
  per-message POINT consistency checks and cross-point validations are plain
  list lookups instead of repeated Horner evaluations.
* **Decode-based row recovery** -- recovering a withheld row used to try
  every ``(t+1)``-subset of vouched points (``C(k, t+1)`` interpolations --
  minutes of work at ``n = 32``).  The fast path interpolates once and
  verifies, then falls back to Berlekamp-Welch decoding, and only reaches the
  exhaustive search in the genuinely ambiguous adversarial corner where no
  uniquely-best candidate exists.  All three paths return byte-identical
  results (``tests/test_golden_trials.py``, ``tests/protocols/test_svss.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.crypto import kernels
from repro.crypto.field import Field
from repro.crypto.polynomial import Polynomial
from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.errors import DecodingError
from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol


def party_point(pid: int) -> int:
    """Field evaluation point of party ``pid`` (1-based to keep 0 for the secret)."""
    return pid + 1


def _validate_row_ints(prime: int, t: int, coefficients: Any) -> Optional[Tuple[int, ...]]:
    """Validate a wire-format row without building a :class:`Polynomial`.

    Returns the reduced, trimmed coefficient tuple -- exactly the ints
    ``Polynomial.from_ints`` would store -- or ``None`` when the payload is
    malformed (non-int coefficients) or the degree exceeds ``t``; both cases
    shun the sender, matching the legacy object-path checks bit for bit.
    """
    if not isinstance(coefficients, (tuple, list)) or not all(
        isinstance(c, int) for c in coefficients
    ):
        return None
    # poly_trim(()) is (); the legacy Polynomial constructor normalised an
    # empty payload to the zero polynomial, and downstream code indexes
    # row[0], so the () form must never escape.
    trimmed = kernels.poly_trim(tuple(c % prime for c in coefficients)) or (0,)
    if len(trimmed) - 1 > t:
        return None
    return trimmed


@dataclass
class ShareState:
    """A party's local state after completing ``SVSS-Share``.

    Attributes:
        dealer: the dealer's party id.
        row: this party's row polynomial ``f_i``.
        recovered: True when the row was recovered from peers' points rather
            than received from the dealer.
        row_ints: the row's reduced coefficient tuple (the wire/kernel form;
            ``row`` is derived from it lazily).
    """

    dealer: int
    row_ints: Tuple[int, ...] = ()
    recovered: bool = False
    _field: Optional[Field] = field(default=None, repr=False)
    _row: Optional[Polynomial] = field(default=None, repr=False)

    @property
    def row(self) -> Polynomial:
        """The row as a :class:`Polynomial`, built on first access."""
        if self._row is None:
            assert self._field is not None
            self._row = Polynomial._from_int_coeffs(self._field, self.row_ints)
        return self._row


class SVSSShare(Protocol):
    """The sharing half of SVSS with designated ``dealer``.

    Start kwargs:
        value: the secret (field element or int); required at the dealer.

    Output: a :class:`ShareState` for use by :class:`SVSSRec`.
    """

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer
        self.field = Field(self.params.prime)
        #: This party's row as a reduced int tuple (None until known).
        self.row_ints: Optional[Tuple[int, ...]] = None
        #: Row evaluated at every party point, indexed by pid (filled with the row).
        self._row_evals: List[int] = []
        self.row_recovered = False
        self.secret_polynomial: Optional[SymmetricBivariatePolynomial] = None
        self.points: Dict[int, int] = {}
        self.consistent: Set[int] = set()
        self.ready_senders: Set[int] = set()
        self._points_sent = False
        self._ready_sent = False

    @classmethod
    def factory(cls, dealer: int) -> Callable[[Process, SessionId], "SVSSShare"]:
        """Protocol factory fixing the dealer."""
        def build(process: Process, session: SessionId) -> "SVSSShare":
            return cls(process, session, dealer)

        return build

    # ------------------------------------------------------------------
    def on_start(self, value: Optional[Any] = None, **_: Any) -> None:
        if self.pid != self.dealer:
            return
        if value is None:
            raise ValueError("the SVSS dealer must provide a value")
        self.secret_polynomial = SymmetricBivariatePolynomial.random(
            self.field, self.t, self.rng, secret=int(self.field(value))
        )
        for receiver in range(self.n):
            row = self.secret_polynomial.row(party_point(receiver))
            self.send(receiver, "ROW", tuple(row.to_ints()))

    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload:
            return
        kind = payload[0]
        if kind == "ROW" and len(payload) == 2:
            self._on_row(sender, payload[1])
        elif kind == "POINT" and len(payload) == 2:
            self._on_point(sender, payload[1])
        elif kind == "READY" and len(payload) == 1:
            self._on_ready(sender)

    def _on_row(self, sender: int, coefficients: Any) -> None:
        if sender != self.dealer:
            return
        row = _validate_row_ints(self.params.prime, self.t, coefficients)
        if row is None:
            # Malformed payload or degree > t: provably faulty dealer.
            self.shun(sender)
            return
        if self.row_ints is not None:
            if row != self.row_ints and not self.row_recovered:
                # Equivocating dealer.
                self.shun(sender)
            return
        self.row_ints = row
        self._after_row_known()

    def _after_row_known(self) -> None:
        assert self.row_ints is not None
        # One batched evaluation at all party points backs both the POINT
        # sends and every subsequent consistency check.
        self._row_evals = kernels.eval_at_many(
            self.params.prime, self.row_ints, range(1, self.n + 1)
        )
        if not self._points_sent:
            self._points_sent = True
            for receiver in range(self.n):
                if receiver == self.pid:
                    continue
                self.send(receiver, "POINT", self._row_evals[receiver])
        self.consistent.add(self.pid)
        # Re-examine points that arrived before the row.
        for sender, value in list(self.points.items()):
            self._check_point(sender, value)
        self._maybe_ready()
        self._maybe_complete()

    def _on_point(self, sender: int, value: Any) -> None:
        if not isinstance(value, int):
            self.shun(sender)
            return
        if sender in self.points:
            if self.points[sender] != value:
                # Equivocation on a point: provably faulty.
                self.shun(sender)
            return
        self.points[sender] = value
        if self.row_ints is not None:
            self._check_point(sender, value)
            self._maybe_ready()
        else:
            self._maybe_recover_row()

    def _check_point(self, sender: int, value: int) -> None:
        if self._row_evals[sender] == value:
            self.consistent.add(sender)
        # An inconsistent point is simply not counted: we cannot tell whether
        # the dealer or the peer is at fault during the share phase.

    def _on_ready(self, sender: int) -> None:
        self.ready_senders.add(sender)
        if self.row_ints is None:
            self._maybe_recover_row()
        self._maybe_complete()

    # ------------------------------------------------------------------
    def _maybe_ready(self) -> None:
        if self._ready_sent or self.row_ints is None:
            return
        if len(self.consistent) >= self.n - self.t:
            self._ready_sent = True
            self.broadcast("READY")

    def _maybe_complete(self) -> None:
        if self.finished or self.row_ints is None:
            return
        if len(self.ready_senders) >= self.n - self.t:
            self.complete(
                ShareState(
                    dealer=self.dealer,
                    row_ints=self.row_ints,
                    recovered=self.row_recovered,
                    _field=self.field,
                )
            )

    # ------------------------------------------------------------------
    # Row recovery: keeps Termination(b) alive when a faulty dealer withheld
    # our row.  The points party i received are evaluations of *its own* row
    # at the senders' indices (by symmetry of F), so t+1 correct points
    # determine the row.  We only trust points from READY senders and require
    # the candidate to agree with at least t+1 of them.
    # ------------------------------------------------------------------
    def _maybe_recover_row(self) -> None:
        if self.row_ints is not None:
            return
        # Normally we wait for an n - t READY quorum before trusting peer
        # points.  A party that shuns the dealer, however, drops the dealer's
        # ROW and READY messages, so it can never observe that quorum; since a
        # shunning event already licenses treating this instance as "binding
        # or shun", it may recover as soon as t + 1 READY senders vouch.
        threshold = (
            self.t + 1
            if self.process.is_shunning(self.dealer)
            else self.n - self.t
        )
        if len(self.ready_senders) < threshold:
            return
        usable = {
            sender: value
            for sender, value in self.points.items()
            if sender in self.ready_senders
        }
        if len(usable) < self.t + 1:
            return
        candidate = self._recover_from_points(usable)
        if candidate is None:
            return
        self.row_ints = candidate
        self.row_recovered = True
        self._after_row_known()

    def _recover_from_points(self, usable: Dict[int, int]) -> Optional[Tuple[int, ...]]:
        """The degree-<=t polynomial with maximal agreement among ``usable``.

        Semantics (inherited from the seed's exhaustive search): among all
        candidates interpolated through some ``t+1``-subset of the points,
        return the one agreeing with the most points, requiring agreement of
        at least ``t + 1``; ties resolve to the candidate first produced by
        subset enumeration over senders in sorted order.

        Three implementations of those semantics, fastest first:

        1. interpolate the first ``t+1`` points and verify against all -- the
           honest case, where every vouched point lies on the true row;
        2. Berlekamp-Welch with ``e = (k - t - 1) // 2`` tolerated errors --
           when it decodes, the result agrees with ``>= k - e`` points, which
           makes it the *strictly unique* maximal candidate (any other
           degree-<=t polynomial matches at most ``e + t < k - e`` points),
           so it is exactly what the exhaustive search would return;
        3. the exhaustive subset search, kept verbatim for the ambiguous
           corner (more than ``e`` corrupted vouched points), with an early
           exit once a candidate's agreement ``a`` satisfies ``2a > k + t``
           (the same uniqueness bound: no later subset can beat it).
        """
        prime = self.params.prime
        t = self.t
        senders = sorted(usable)
        xs = tuple(party_point(s) for s in senders)
        # Agreement always compares against the *raw* received value (a value
        # outside [0, prime) can never agree with any candidate -- the seed's
        # semantics); interpolation and decoding work on the reduced mirror.
        ys_raw = [usable[s] for s in senders]
        ys = [y % prime for y in ys_raw]
        k = len(senders)

        def raw_agreement(cand: Tuple[int, ...]) -> int:
            return sum(
                1
                for x, y in zip(xs, ys_raw)
                if kernels.horner(prime, cand, x) == y
            )

        # Fast path 1: all vouched points on one degree-<=t polynomial.
        candidate = kernels.poly_trim(kernels.interpolate(prime, xs[: t + 1], ys[: t + 1]))
        if raw_agreement(candidate) == k:
            return candidate

        # Fast path 2: unique decoding with up to (k - t - 1) // 2 errors.
        max_errors = (k - t - 1) // 2
        if max_errors >= 1:
            try:
                candidate = kernels.berlekamp_welch_raw(prime, xs, ys, t, max_errors)
            except DecodingError:
                candidate = None
            if candidate is not None and 2 * raw_agreement(candidate) > k + t:
                return candidate

        # Ambiguous corner: exhaustive search, as the seed implementation.
        best_agreement = 0
        best: Optional[Tuple[int, ...]] = None
        for subset in itertools.combinations(range(k), t + 1):
            sub_xs = tuple(xs[i] for i in subset)
            cand = kernels.poly_trim(
                kernels.interpolate(prime, sub_xs, [ys[i] for i in subset])
            )
            if len(cand) - 1 > t:
                continue
            agreement = raw_agreement(cand)
            if agreement > best_agreement:
                best_agreement, best = agreement, cand
                if 2 * agreement > k + t:
                    # Strictly unique maximum: no later subset can beat it.
                    break
        if best is None or best_agreement < t + 1:
            return None
        return best


class SVSSRec(Protocol):
    """The reconstruction half of SVSS.

    Start kwargs:
        share: the :class:`ShareState` produced by :class:`SVSSShare`.

    Output: the reconstructed secret as a plain integer.
    """

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer
        self.field = Field(self.params.prime)
        self.share: Optional[ShareState] = None
        #: Own row evaluated at every party point, indexed by pid.
        self._own_evals: List[int] = []
        self.received_rows: Dict[int, Tuple[int, ...]] = {}
        self.validated: Dict[int, Tuple[int, ...]] = {}

    @classmethod
    def factory(cls, dealer: int) -> Callable[[Process, SessionId], "SVSSRec"]:
        """Protocol factory fixing the dealer whose secret is reconstructed."""
        def build(process: Process, session: SessionId) -> "SVSSRec":
            return cls(process, session, dealer)

        return build

    # ------------------------------------------------------------------
    def on_start(self, share: Optional[ShareState] = None, **_: Any) -> None:
        if share is None:
            raise ValueError("SVSS-Rec requires the ShareState from SVSS-Share")
        self.share = share
        row_ints = tuple(share.row_ints)
        self._own_evals = kernels.eval_at_many(
            self.params.prime, row_ints, range(1, self.n + 1)
        )
        self.validated[self.pid] = row_ints
        self.broadcast("RECROW", row_ints)
        self._maybe_reconstruct()

    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload or payload[0] != "RECROW" or len(payload) != 2:
            return
        row = _validate_row_ints(self.params.prime, self.t, payload[1])
        if row is None:
            self.shun(sender)
            return
        if sender in self.received_rows:
            if self.received_rows[sender] != row:
                self.shun(sender)
            return
        self.received_rows[sender] = row
        self._validate(sender, row)
        self._maybe_reconstruct()

    # ------------------------------------------------------------------
    def _validate(self, sender: int, row: Tuple[int, ...]) -> None:
        if self.share is None or sender == self.pid:
            return
        expected = self._own_evals[sender]
        if kernels.horner(self.params.prime, row, party_point(self.pid)) == expected:
            self.validated[sender] = row
        else:
            # The sender's claimed row contradicts the cross-point we hold:
            # either the sender or the dealer is faulty.  Shunning the sender
            # realises the "binding or shun" disjunction of Definition 3.2.
            self.shun(sender)

    def _maybe_reconstruct(self) -> None:
        if self.finished or self.share is None:
            return
        if len(self.validated) < self.t + 1:
            return
        chosen = sorted(self.validated)[: self.t + 1]
        xs = tuple(party_point(pid) for pid in chosen)
        # A validated row's value at 0 is its (reduced) constant term.
        ys = [self.validated[pid][0] for pid in chosen]
        self.complete(kernels.interpolate_at_zero(self.params.prime, xs, ys))
