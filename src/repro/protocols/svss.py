"""SVSS: shunning verifiable secret sharing (Definition 3.2).

The paper builds its strong common coin from the *shunning* VSS of Abraham,
Dolev and Halpern (PODC'08).  SVSS weakens full AVSS exactly enough to escape
the Section-2 lower bound: instead of unconditional binding it guarantees
**binding or shunning** -- whenever reconstruction would disagree, some party
starts shunning another party, and fewer than ``n^2`` shunning events can ever
occur, so at most ``n^2`` SVSS instances can "fail".

This module implements the pair of protocols

* :class:`SVSSShare` -- the dealer embeds the secret in a random symmetric
  bivariate polynomial ``F`` of degree ``t`` and sends party ``i`` its row
  ``f_i(y) = F(alpha_i, y)``.  Parties cross-check pairwise points
  (``f_i(alpha_j) = f_j(alpha_i)``), send ``READY`` once ``n - t`` points are
  consistent with their row and complete on ``n - t`` ``READY`` messages.
  Parties that never received a row from a (faulty) dealer recover it from the
  points of ``READY`` senders, which keeps the termination property
  "one honest completion implies all honest completions".
* :class:`SVSSRec` -- parties broadcast their rows; a received row is accepted
  if it matches the receiver's own row at the receiver's index, otherwise the
  sender is shunned.  ``t + 1`` accepted rows reconstruct the secret.

Shunning is triggered by provable misbehaviour (equivocation, malformed
payloads) and by row/point inconsistencies during reconstruction.  Relative to
ADH'08 the blame-assignment logic is simplified: with a *faulty dealer* an
inconsistency may cause an honest party to be shunned.  This preserves every
property the CoinFlip analysis uses (binding-or-shun, fewer than ``n^2`` shun
events, validity and hiding for honest dealers) and is documented in
DESIGN.md as a substitution.

Hot-path design (SVSS messages dominate every coin/agreement trial):

* **Raw-int rows** -- ROW/RECROW payloads are validated, compared and
  evaluated as plain reduced int tuples; a :class:`Polynomial` object is only
  built lazily, once, when a completed :class:`ShareState` needs it.
* **Network-wide batched crypto plane** -- all instances of a trial share the
  :class:`~repro.crypto.kernels.CryptoPlane` interned on the network.  A row
  broadcast by one party is validated once and evaluated at *all* party
  points once (one exact int64 product on vectorised plans), no matter how
  many of the n receivers, sessions or dealers touch it; every POINT/RECROW
  consistency check is then a list index.  The dealer generates all ``n``
  rows of its bivariate sharing through one grid product, and reconstruction
  reuses one memoised set of Lagrange weights per fixed-set signature across
  the ``n`` parallel :class:`SVSSRec` sessions of a coin flip.  The scalar
  kernels remain the oracle: every plane result is byte-identical
  (``tests/crypto/test_eval_plan.py``, ``tests/test_golden_trials.py``).
* **Decode-based row recovery** -- recovering a withheld row used to try
  every ``(t+1)``-subset of vouched points (``C(k, t+1)`` interpolations --
  minutes of work at ``n = 32``).  The fast path interpolates once and
  verifies, then falls back to Berlekamp-Welch decoding, and only reaches the
  exhaustive search in the genuinely ambiguous adversarial corner where no
  uniquely-best candidate exists.  All three paths return byte-identical
  results (``tests/test_golden_trials.py``, ``tests/protocols/test_svss.py``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.crypto import kernels
from repro.crypto.field import Field
from repro.crypto.polynomial import Polynomial
from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.errors import DecodingError
from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol


_MISS = object()


def party_point(pid: int) -> int:
    """Field evaluation point of party ``pid`` (1-based to keep 0 for the secret)."""
    return pid + 1


def _validate_row_ints(prime: int, t: int, coefficients: Any) -> Optional[Tuple[int, ...]]:
    """Validate a wire-format row without building a :class:`Polynomial`.

    Returns the reduced, trimmed coefficient tuple -- exactly the ints
    ``Polynomial.from_ints`` would store -- or ``None`` when the payload is
    malformed (non-int coefficients) or the degree exceeds ``t``; both cases
    shun the sender, matching the legacy object-path checks bit for bit.

    This is the scalar oracle; the protocol classes route through the
    network's :class:`~repro.crypto.kernels.CryptoPlane`, whose cached
    ``validate_row`` agrees with this function on every input
    (``tests/crypto/test_eval_plan.py``).
    """
    if not isinstance(coefficients, (tuple, list)) or not all(
        isinstance(c, int) for c in coefficients
    ):
        return None
    # poly_trim(()) is (); the legacy Polynomial constructor normalised an
    # empty payload to the zero polynomial, and downstream code indexes
    # row[0], so the () form must never escape.
    trimmed = kernels.poly_trim(tuple(c % prime for c in coefficients)) or (0,)
    if len(trimmed) - 1 > t:
        return None
    return trimmed


@dataclass
class ShareState:
    """A party's local state after completing ``SVSS-Share``.

    Attributes:
        dealer: the dealer's party id.
        row: this party's row polynomial ``f_i``.
        recovered: True when the row was recovered from peers' points rather
            than received from the dealer.
        row_ints: the row's reduced coefficient tuple (the wire/kernel form;
            ``row`` is derived from it lazily).
    """

    dealer: int
    row_ints: Tuple[int, ...] = ()
    recovered: bool = False
    _field: Optional[Field] = field(default=None, repr=False)
    _row: Optional[Polynomial] = field(default=None, repr=False)

    @property
    def row(self) -> Polynomial:
        """The row as a :class:`Polynomial`, built on first access."""
        if self._row is None:
            assert self._field is not None
            self._row = Polynomial._from_int_coeffs(self._field, self.row_ints)
        return self._row


class SVSSShare(Protocol):
    """The sharing half of SVSS with designated ``dealer``.

    Start kwargs:
        value: the secret (field element or int); required at the dealer.

    Output: a :class:`ShareState` for use by :class:`SVSSRec`.
    """

    __slots__ = (
        "dealer",
        "field",
        "_plane",
        "row_ints",
        "_row_evals",
        "row_recovered",
        "secret_polynomial",
        "points",
        "_consistent_count",
        "_ready_flags",
        "_ready_count",
        "_quorum",
        "_points_sent",
        "_ready_sent",
    )

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer
        self.field = Field(self.params.prime)
        #: Network-wide batched crypto plane (shared row/eval/weight caches).
        self._plane = process.network.crypto_plane()
        #: This party's row as a reduced int tuple (None until known).
        self.row_ints: Optional[Tuple[int, ...]] = None
        #: Row evaluated at every party point, indexed by pid (filled with the row).
        self._row_evals: List[int] = []
        self.row_recovered = False
        self.secret_polynomial: Optional[SymmetricBivariatePolynomial] = None
        #: Received cross-points, indexed by sender pid (None until received).
        self.points: List[Optional[int]] = [None] * self.n
        #: Number of senders (self included) whose point matches our row.
        self._consistent_count = 0
        #: READY flags and count, indexed by sender pid.
        self._ready_flags: List[bool] = [False] * self.n
        self._ready_count = 0
        self._quorum = self.n - self.t
        self._points_sent = False
        self._ready_sent = False

    @classmethod
    def factory(cls, dealer: int) -> Callable[[Process, SessionId], "SVSSShare"]:
        """Protocol factory fixing the dealer."""
        def build(process: Process, session: SessionId) -> "SVSSShare":
            return cls(process, session, dealer)

        return build

    # ------------------------------------------------------------------
    def on_start(self, value: Optional[Any] = None, **_: Any) -> None:
        if self.pid != self.dealer:
            return
        if value is None:
            raise ValueError("the SVSS dealer must provide a value")
        self.secret_polynomial = SymmetricBivariatePolynomial.random(
            self.field, self.t, self.rng, secret=int(self.field(value))
        )
        # All n wire rows through one grid product (the same trimmed tuples
        # the per-receiver ``row().to_ints()`` loop used to build).  Seed-era
        # substitute polynomials (the frozen bench oracles) lack the raw-int
        # mirror and keep the row-by-row path.
        matrix = getattr(self.secret_polynomial, "int_matrix", None)
        if matrix is not None:
            rows = self._plane.plan.bivariate_rows(matrix)
        else:
            rows = [
                tuple(self.secret_polynomial.row(party_point(receiver)).to_ints())
                for receiver in range(self.n)
            ]
        process = self.process
        if process.outgoing_mutator is None:
            process.network.submit_fanout(self.pid, self.session, "ROW", rows)
        else:
            for receiver in range(self.n):
                self.send(receiver, "ROW", rows[receiver])

    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload:
            return
        kind = payload[0]
        # Dispatch in delivery-frequency order, with the POINT and READY
        # bodies inlined: together they are ~n of every n+1 deliveries of a
        # share instance, and a call frame each is measurable at n=64.
        if kind == "POINT" and len(payload) == 2:
            value = payload[1]
            if not isinstance(value, int):
                self.shun(sender)
                return
            points = self.points
            known = points[sender]
            if known is not None:
                if known != value:
                    # Equivocation on a point: provably faulty.
                    self.shun(sender)
                return
            points[sender] = value
            if self.row_ints is not None:
                if self._ready_sent:
                    # READY is out: the consistency tally has served its only
                    # purpose and no further bookkeeping can be observed.
                    return
                if self._row_evals[sender] == value:
                    self._consistent_count += 1
                    self._maybe_ready()
            else:
                self._maybe_recover_row()
        elif kind == "READY" and len(payload) == 1:
            if self.finished:
                # Completion required the row, so neither recovery nor the
                # READY tally can have any further observable effect.
                return
            flags = self._ready_flags
            if not flags[sender]:
                flags[sender] = True
                self._ready_count += 1
            if self.row_ints is None:
                self._maybe_recover_row()
            elif self._ready_count >= self._quorum:
                self._maybe_complete()
        elif kind == "ROW" and len(payload) == 2:
            self._on_row(sender, payload[1])

    def _on_row(self, sender: int, coefficients: Any) -> None:
        if sender != self.dealer:
            return
        record = self._plane.validate_row_record(coefficients)
        if record is None:
            # Malformed payload or degree > t: provably faulty dealer.
            self.shun(sender)
            return
        row, evals = record
        if self.row_ints is not None:
            if row != self.row_ints and not self.row_recovered:
                # Equivocating dealer.
                self.shun(sender)
            return
        self.row_ints = row
        self._after_row_known(evals)

    def _after_row_known(self, evals: Optional[List[int]] = None) -> None:
        assert self.row_ints is not None
        self.annotate_phase("row")
        # One batched evaluation at all party points (cached network-wide)
        # backs both the POINT sends and every subsequent consistency check.
        if evals is None:
            evals = self._plane.row_evals(self.row_ints)
        self._row_evals = evals
        if not self._points_sent:
            self._points_sent = True
            process = self.process
            if process.outgoing_mutator is None:
                process.network.submit_fanout(
                    self.pid, self.session, "POINT", evals, skip=self.pid
                )
            else:
                for receiver in range(self.n):
                    if receiver == self.pid:
                        continue
                    self.send(receiver, "POINT", evals[receiver])
        # Batch-examine the points buffered before the row arrived (an
        # inconsistent point is simply not counted: we cannot tell whether
        # the dealer or the peer is at fault during the share phase).
        count = 1  # our own point is consistent by construction
        for sender, value in enumerate(self.points):
            if value is not None and evals[sender] == value:
                count += 1
        self._consistent_count = count
        self._maybe_ready()
        self._maybe_complete()

    # ------------------------------------------------------------------
    def _maybe_ready(self) -> None:
        if self._ready_sent or self.row_ints is None:
            return
        if self._consistent_count >= self._quorum:
            self._ready_sent = True
            self.annotate_phase("ready")
            self.broadcast("READY")

    def _maybe_complete(self) -> None:
        if self.finished or self.row_ints is None:
            return
        if self._ready_count >= self._quorum:
            self.complete(
                ShareState(
                    dealer=self.dealer,
                    row_ints=self.row_ints,
                    recovered=self.row_recovered,
                    _field=self.field,
                )
            )

    # ------------------------------------------------------------------
    # Row recovery: keeps Termination(b) alive when a faulty dealer withheld
    # our row.  The points party i received are evaluations of *its own* row
    # at the senders' indices (by symmetry of F), so t+1 correct points
    # determine the row.  We only trust points from READY senders and require
    # the candidate to agree with at least t+1 of them.
    # ------------------------------------------------------------------
    def _maybe_recover_row(self) -> None:
        if self.row_ints is not None:
            return
        # Normally we wait for an n - t READY quorum before trusting peer
        # points.  A party that shuns the dealer, however, drops the dealer's
        # ROW and READY messages, so it can never observe that quorum; since a
        # shunning event already licenses treating this instance as "binding
        # or shun", it may recover as soon as t + 1 READY senders vouch.
        ready_count = self._ready_count
        if ready_count < self.t + 1:
            # Below even the shunning threshold: nothing to try yet (this is
            # the common early-exit while the dealer's ROW is simply slow).
            return
        threshold = (
            self.t + 1
            if self.process.is_shunning(self.dealer)
            else self._quorum
        )
        if ready_count < threshold:
            return
        flags = self._ready_flags
        usable = {
            sender: value
            for sender, value in enumerate(self.points)
            if value is not None and flags[sender]
        }
        if len(usable) < self.t + 1:
            return
        candidate = self._recover_from_points(usable)
        if candidate is None:
            return
        self.row_ints = candidate
        self.row_recovered = True
        self._after_row_known()

    def _recover_from_points(self, usable: Dict[int, int]) -> Optional[Tuple[int, ...]]:
        """The degree-<=t polynomial with maximal agreement among ``usable``.

        Semantics (inherited from the seed's exhaustive search): among all
        candidates interpolated through some ``t+1``-subset of the points,
        return the one agreeing with the most points, requiring agreement of
        at least ``t + 1``; ties resolve to the candidate first produced by
        subset enumeration over senders in sorted order.

        Three implementations of those semantics, fastest first:

        1. interpolate the first ``t+1`` points and verify against all -- the
           honest case, where every vouched point lies on the true row;
        2. Berlekamp-Welch with ``e = (k - t - 1) // 2`` tolerated errors --
           when it decodes, the result agrees with ``>= k - e`` points, which
           makes it the *strictly unique* maximal candidate (any other
           degree-<=t polynomial matches at most ``e + t < k - e`` points),
           so it is exactly what the exhaustive search would return;
        3. the exhaustive subset search, kept verbatim for the ambiguous
           corner (more than ``e`` corrupted vouched points), with an early
           exit once a candidate's agreement ``a`` satisfies ``2a > k + t``
           (the same uniqueness bound: no later subset can beat it).
        """
        prime = self.params.prime
        t = self.t
        plane = self._plane
        senders = sorted(usable)
        xs = tuple(party_point(s) for s in senders)
        # Agreement always compares against the *raw* received value (a value
        # outside [0, prime) can never agree with any candidate -- the seed's
        # semantics); interpolation and decoding work on the reduced mirror.
        ys_raw = [usable[s] for s in senders]
        ys = [y % prime for y in ys_raw]
        k = len(senders)

        def raw_agreement(cand: Tuple[int, ...]) -> int:
            # One batched (and cached) sweep over all party points replaces a
            # Horner evaluation per vouched point; evals[s] == cand(s + 1).
            evals = plane.row_evals(cand)
            return sum(1 for s, y in zip(senders, ys_raw) if evals[s] == y)

        # Fast path 1: all vouched points on one degree-<=t polynomial.
        candidate = kernels.poly_trim(kernels.interpolate(prime, xs[: t + 1], ys[: t + 1]))
        if raw_agreement(candidate) == k:
            return candidate

        # Fast path 2: unique decoding with up to (k - t - 1) // 2 errors.
        max_errors = (k - t - 1) // 2
        if max_errors >= 1:
            try:
                candidate = kernels.berlekamp_welch_raw(prime, xs, ys, t, max_errors)
            except DecodingError:
                candidate = None
            if candidate is not None and 2 * raw_agreement(candidate) > k + t:
                return candidate

        # Ambiguous corner: exhaustive search, as the seed implementation.
        best_agreement = 0
        best: Optional[Tuple[int, ...]] = None
        for subset in itertools.combinations(range(k), t + 1):
            sub_xs = tuple(xs[i] for i in subset)
            cand = kernels.poly_trim(
                kernels.interpolate(prime, sub_xs, [ys[i] for i in subset])
            )
            if len(cand) - 1 > t:
                continue
            agreement = raw_agreement(cand)
            if agreement > best_agreement:
                best_agreement, best = agreement, cand
                if 2 * agreement > k + t:
                    # Strictly unique maximum: no later subset can beat it.
                    break
        if best is None or best_agreement < t + 1:
            return None
        return best


class SVSSRec(Protocol):
    """The reconstruction half of SVSS.

    Start kwargs:
        share: the :class:`ShareState` produced by :class:`SVSSShare`.

    Output: the reconstructed secret as a plain integer.
    """

    __slots__ = (
        "dealer",
        "field",
        "_plane",
        "_row_cache",
        "_eval_cache",
        "_t1",
        "share",
        "_own_evals",
        "received_rows",
        "validated",
    )

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer
        self.field = Field(self.params.prime)
        #: Network-wide batched crypto plane (shared row/eval/weight caches).
        self._plane = plane = process.network.crypto_plane()
        # Direct references to the plane's shared caches: the RECROW handler
        # is the single hottest protocol path of a coin trial, and the hit
        # case must be one dict probe, not a method-call chain.
        self._row_cache = plane.row_cache
        self._eval_cache = plane.eval_cache
        self._t1 = self.t + 1
        self.share: Optional[ShareState] = None
        #: Own row evaluated at every party point, indexed by pid.
        self._own_evals: List[int] = []
        #: Accepted first row per sender pid (None until received).
        self.received_rows: List[Optional[Tuple[int, ...]]] = [None] * self.n
        self.validated: Dict[int, Tuple[int, ...]] = {}

    @classmethod
    def factory(cls, dealer: int) -> Callable[[Process, SessionId], "SVSSRec"]:
        """Protocol factory fixing the dealer whose secret is reconstructed."""
        def build(process: Process, session: SessionId) -> "SVSSRec":
            return cls(process, session, dealer)

        return build

    # ------------------------------------------------------------------
    def on_start(self, share: Optional[ShareState] = None, **_: Any) -> None:
        if share is None:
            raise ValueError("SVSS-Rec requires the ShareState from SVSS-Share")
        self.share = share
        row_ints = tuple(share.row_ints)
        self._own_evals = self._plane.row_evals(row_ints)
        self.validated[self.pid] = row_ints
        self.broadcast("RECROW", row_ints)
        self._maybe_reconstruct()

    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload or payload[0] != "RECROW" or len(payload) != 2:
            return
        raw = payload[1]
        # Inlined plane.validate_row_record hit path: ONE shared-cache probe
        # resolves both validation and the row's cross-point evaluations.
        try:
            record = self._row_cache.get(raw, _MISS)
        except TypeError:
            record = _MISS
        if record is _MISS:
            record = self._plane.validate_row_record(raw)
        if record is None:
            self.shun(sender)
            return
        row, evals = record
        received = self.received_rows
        known = received[sender]
        if known is not None:
            if known is not row and known != row:
                self.shun(sender)
            return
        received[sender] = row
        if sender == self.pid:
            return
        # Inlined _validate: the sender's row evaluated at our point, from
        # the plane's shared table (the same list every receiver of this
        # broadcast resolves); equal to ``horner(prime, row, point(pid))``.
        if evals[self.pid] == self._own_evals[sender]:
            validated = self.validated
            validated[sender] = row
            # Only an accepted row can cross the reconstruction threshold.
            if len(validated) >= self._t1 and not self.finished:
                self._maybe_reconstruct()
        else:
            # The sender's claimed row contradicts the cross-point we hold:
            # either the sender or the dealer is faulty.  Shunning the sender
            # realises the "binding or shun" disjunction of Definition 3.2.
            self.shun(sender)

    # ------------------------------------------------------------------
    def _maybe_reconstruct(self) -> None:
        if self.finished or self.share is None:
            return
        validated = self.validated
        if len(validated) < self._t1:
            return
        chosen = sorted(validated)[: self._t1]
        # A validated row's value at 0 is its (reduced) constant term; the
        # fixed-set Lagrange weights are memoised on the plane, shared by all
        # n parallel SVSS-Rec sessions that settle on the same signature.
        ys = [validated[pid][0] for pid in chosen]
        self.complete(self._plane.reconstruct_at_zero(tuple(chosen), ys))
