"""SVSS: shunning verifiable secret sharing (Definition 3.2).

The paper builds its strong common coin from the *shunning* VSS of Abraham,
Dolev and Halpern (PODC'08).  SVSS weakens full AVSS exactly enough to escape
the Section-2 lower bound: instead of unconditional binding it guarantees
**binding or shunning** -- whenever reconstruction would disagree, some party
starts shunning another party, and fewer than ``n^2`` shunning events can ever
occur, so at most ``n^2`` SVSS instances can "fail".

This module implements the pair of protocols

* :class:`SVSSShare` -- the dealer embeds the secret in a random symmetric
  bivariate polynomial ``F`` of degree ``t`` and sends party ``i`` its row
  ``f_i(y) = F(alpha_i, y)``.  Parties cross-check pairwise points
  (``f_i(alpha_j) = f_j(alpha_i)``), send ``READY`` once ``n - t`` points are
  consistent with their row and complete on ``n - t`` ``READY`` messages.
  Parties that never received a row from a (faulty) dealer recover it from the
  points of ``READY`` senders, which keeps the termination property
  "one honest completion implies all honest completions".
* :class:`SVSSRec` -- parties broadcast their rows; a received row is accepted
  if it matches the receiver's own row at the receiver's index, otherwise the
  sender is shunned.  ``t + 1`` accepted rows reconstruct the secret.

Shunning is triggered by provable misbehaviour (equivocation, malformed
payloads) and by row/point inconsistencies during reconstruction.  Relative to
ADH'08 the blame-assignment logic is simplified: with a *faulty dealer* an
inconsistency may cause an honest party to be shunned.  This preserves every
property the CoinFlip analysis uses (binding-or-shun, fewer than ``n^2`` shun
events, validity and hiding for honest dealers) and is documented in
DESIGN.md as a substitution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.crypto.field import Field
from repro.crypto.polynomial import Polynomial
from repro.crypto.bivariate import SymmetricBivariatePolynomial
from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol


def party_point(pid: int) -> int:
    """Field evaluation point of party ``pid`` (1-based to keep 0 for the secret)."""
    return pid + 1


@dataclass
class ShareState:
    """A party's local state after completing ``SVSS-Share``.

    Attributes:
        dealer: the dealer's party id.
        row: this party's row polynomial ``f_i``.
        recovered: True when the row was recovered from peers' points rather
            than received from the dealer.
    """

    dealer: int
    row: Polynomial
    recovered: bool = False


class SVSSShare(Protocol):
    """The sharing half of SVSS with designated ``dealer``.

    Start kwargs:
        value: the secret (field element or int); required at the dealer.

    Output: a :class:`ShareState` for use by :class:`SVSSRec`.
    """

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer
        self.field = Field(self.params.prime)
        self.row: Optional[Polynomial] = None
        self.row_recovered = False
        self.secret_polynomial: Optional[SymmetricBivariatePolynomial] = None
        self.points: Dict[int, int] = {}
        self.consistent: Set[int] = set()
        self.ready_senders: Set[int] = set()
        self._points_sent = False
        self._ready_sent = False

    @classmethod
    def factory(cls, dealer: int) -> Callable[[Process, SessionId], "SVSSShare"]:
        """Protocol factory fixing the dealer."""
        def build(process: Process, session: SessionId) -> "SVSSShare":
            return cls(process, session, dealer)

        return build

    # ------------------------------------------------------------------
    def on_start(self, value: Optional[Any] = None, **_: Any) -> None:
        if self.pid != self.dealer:
            return
        if value is None:
            raise ValueError("the SVSS dealer must provide a value")
        self.secret_polynomial = SymmetricBivariatePolynomial.random(
            self.field, self.t, self.rng, secret=int(self.field(value))
        )
        for receiver in range(self.n):
            row = self.secret_polynomial.row(party_point(receiver))
            self.send(receiver, "ROW", tuple(row.to_ints()))

    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload:
            return
        kind = payload[0]
        if kind == "ROW" and len(payload) == 2:
            self._on_row(sender, payload[1])
        elif kind == "POINT" and len(payload) == 2:
            self._on_point(sender, payload[1])
        elif kind == "READY" and len(payload) == 1:
            self._on_ready(sender)

    def _on_row(self, sender: int, coefficients: Any) -> None:
        if sender != self.dealer:
            return
        if not isinstance(coefficients, (tuple, list)) or not all(
            isinstance(c, int) for c in coefficients
        ):
            self.shun(sender)
            return
        row = Polynomial.from_ints(self.field, list(coefficients))
        if row.degree > self.t:
            # Malformed sharing: provably faulty dealer.
            self.shun(sender)
            return
        if self.row is not None:
            if row != self.row and not self.row_recovered:
                # Equivocating dealer.
                self.shun(sender)
            return
        self.row = row
        self._after_row_known()

    def _after_row_known(self) -> None:
        assert self.row is not None
        if not self._points_sent:
            self._points_sent = True
            for receiver in range(self.n):
                if receiver == self.pid:
                    continue
                self.send(receiver, "POINT", self.row.eval_int(party_point(receiver)))
        self.consistent.add(self.pid)
        # Re-examine points that arrived before the row.
        for sender, value in list(self.points.items()):
            self._check_point(sender, value)
        self._maybe_ready()
        self._maybe_complete()

    def _on_point(self, sender: int, value: Any) -> None:
        if not isinstance(value, int):
            self.shun(sender)
            return
        if sender in self.points:
            if self.points[sender] != value:
                # Equivocation on a point: provably faulty.
                self.shun(sender)
            return
        self.points[sender] = value
        if self.row is not None:
            self._check_point(sender, value)
            self._maybe_ready()
        else:
            self._maybe_recover_row()

    def _check_point(self, sender: int, value: Any) -> None:
        assert self.row is not None
        if self.row.eval_int(party_point(sender)) == value:
            self.consistent.add(sender)
        # An inconsistent point is simply not counted: we cannot tell whether
        # the dealer or the peer is at fault during the share phase.

    def _on_ready(self, sender: int) -> None:
        self.ready_senders.add(sender)
        if self.row is None:
            self._maybe_recover_row()
        self._maybe_complete()

    # ------------------------------------------------------------------
    def _maybe_ready(self) -> None:
        if self._ready_sent or self.row is None:
            return
        if len(self.consistent) >= self.n - self.t:
            self._ready_sent = True
            self.broadcast("READY")

    def _maybe_complete(self) -> None:
        if self.finished or self.row is None:
            return
        if len(self.ready_senders) >= self.n - self.t:
            self.complete(
                ShareState(dealer=self.dealer, row=self.row, recovered=self.row_recovered)
            )

    # ------------------------------------------------------------------
    # Row recovery: keeps Termination(b) alive when a faulty dealer withheld
    # our row.  The points party i received are evaluations of *its own* row
    # at the senders' indices (by symmetry of F), so t+1 correct points
    # determine the row.  We only trust points from READY senders and require
    # the candidate to agree with at least t+1 of them.
    # ------------------------------------------------------------------
    def _maybe_recover_row(self) -> None:
        if self.row is not None:
            return
        # Normally we wait for an n - t READY quorum before trusting peer
        # points.  A party that shuns the dealer, however, drops the dealer's
        # ROW and READY messages, so it can never observe that quorum; since a
        # shunning event already licenses treating this instance as "binding
        # or shun", it may recover as soon as t + 1 READY senders vouch.
        threshold = (
            self.t + 1
            if self.process.is_shunning(self.dealer)
            else self.n - self.t
        )
        if len(self.ready_senders) < threshold:
            return
        usable = {
            sender: value
            for sender, value in self.points.items()
            if sender in self.ready_senders
        }
        if len(usable) < self.t + 1:
            return
        candidate = self._recover_from_points(usable)
        if candidate is None:
            return
        self.row = candidate
        self.row_recovered = True
        self._after_row_known()

    def _recover_from_points(self, usable: Dict[int, int]) -> Optional[Polynomial]:
        senders = sorted(usable)
        best: Tuple[int, Optional[Polynomial]] = (0, None)
        for subset in itertools.combinations(senders, self.t + 1):
            points = [(party_point(s), usable[s]) for s in subset]
            candidate = Polynomial.interpolate(self.field, points)
            if candidate.degree > self.t:
                continue
            agreement = sum(
                1
                for sender, value in usable.items()
                if candidate.eval_int(party_point(sender)) == value
            )
            if agreement > best[0]:
                best = (agreement, candidate)
        agreement, candidate = best
        if candidate is None or agreement < self.t + 1:
            return None
        return candidate


class SVSSRec(Protocol):
    """The reconstruction half of SVSS.

    Start kwargs:
        share: the :class:`ShareState` produced by :class:`SVSSShare`.

    Output: the reconstructed secret as a plain integer.
    """

    def __init__(self, process: Process, session: SessionId, dealer: int) -> None:
        super().__init__(process, session)
        self.dealer = dealer
        self.field = Field(self.params.prime)
        self.share: Optional[ShareState] = None
        self.received_rows: Dict[int, Polynomial] = {}
        self.validated: Dict[int, Polynomial] = {}

    @classmethod
    def factory(cls, dealer: int) -> Callable[[Process, SessionId], "SVSSRec"]:
        """Protocol factory fixing the dealer whose secret is reconstructed."""
        def build(process: Process, session: SessionId) -> "SVSSRec":
            return cls(process, session, dealer)

        return build

    # ------------------------------------------------------------------
    def on_start(self, share: Optional[ShareState] = None, **_: Any) -> None:
        if share is None:
            raise ValueError("SVSS-Rec requires the ShareState from SVSS-Share")
        self.share = share
        self.validated[self.pid] = share.row
        self.broadcast("RECROW", tuple(share.row.to_ints()))
        self._maybe_reconstruct()

    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload or payload[0] != "RECROW" or len(payload) != 2:
            return
        coefficients = payload[1]
        if not isinstance(coefficients, (tuple, list)) or not all(
            isinstance(c, int) for c in coefficients
        ):
            self.shun(sender)
            return
        row = Polynomial.from_ints(self.field, list(coefficients))
        if row.degree > self.t:
            self.shun(sender)
            return
        if sender in self.received_rows:
            if self.received_rows[sender] != row:
                self.shun(sender)
            return
        self.received_rows[sender] = row
        self._validate(sender, row)
        self._maybe_reconstruct()

    # ------------------------------------------------------------------
    def _validate(self, sender: int, row: Polynomial) -> None:
        if self.share is None or sender == self.pid:
            return
        expected = self.share.row.eval_int(party_point(sender))
        if row.eval_int(party_point(self.pid)) == expected:
            self.validated[sender] = row
        else:
            # The sender's claimed row contradicts the cross-point we hold:
            # either the sender or the dealer is faulty.  Shunning the sender
            # realises the "binding or shun" disjunction of Definition 3.2.
            self.shun(sender)

    def _maybe_reconstruct(self) -> None:
        if self.finished or self.share is None:
            return
        if len(self.validated) < self.t + 1:
            return
        chosen = sorted(self.validated)[: self.t + 1]
        points = [
            (party_point(pid), self.validated[pid].eval_int(0)) for pid in chosen
        ]
        polynomial = Polynomial.interpolate(self.field, points)
        self.complete(polynomial.eval_int(0))
