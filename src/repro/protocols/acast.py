"""A-Cast: Bracha's asynchronous reliable broadcast.

This is the Broadcast primitive of Definition 4.4 (the paper cites Bracha
[6]).  A designated sender distributes a value; the protocol guarantees

* **Termination** -- with an honest sender every honest party completes; if
  any honest party completes, every participating honest party completes.
* **Validity** -- with an honest sender everyone outputs the sender's value.
* **Correctness** -- no two honest parties output different values.

Message flow (classic echo/ready): the sender broadcasts ``VALUE``; parties
echo it; ``n - t`` echoes (or ``t + 1`` readies) trigger a ``READY``;
``n - t`` readies deliver.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Any, Callable, Dict, Optional, Set

from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol


class ACast(Protocol):
    """One reliable-broadcast instance with a designated ``sender`` party.

    Start kwargs:
        value: the value to broadcast (required at the sender, ignored
            elsewhere).

    Output: the broadcast value.
    """

    def __init__(self, process: Process, session: SessionId, sender: int) -> None:
        super().__init__(process, session)
        self.sender = sender
        self._echoed = False
        self._readied = False
        self._echoes: Dict[Any, Set[int]] = defaultdict(set)
        self._readies: Dict[Any, Set[int]] = defaultdict(set)

    @classmethod
    def factory(cls, sender: int) -> Callable[[Process, SessionId], "ACast"]:
        """Protocol factory fixing the designated sender."""
        def build(process: Process, session: SessionId) -> "ACast":
            return cls(process, session, sender)

        return build

    # ------------------------------------------------------------------
    def on_start(self, value: Optional[Any] = None, **_: Any) -> None:
        if self.pid == self.sender:
            if value is None:
                raise ValueError("the A-Cast sender must provide a value")
            self.broadcast("VALUE", value)

    def on_message(self, sender: int, payload: tuple) -> None:
        if not payload:
            return
        kind = payload[0]
        if kind == "VALUE" and len(payload) == 2:
            self._on_value(sender, payload[1])
        elif kind == "ECHO" and len(payload) == 2:
            self._on_echo(sender, payload[1])
        elif kind == "READY" and len(payload) == 2:
            self._on_ready(sender, payload[1])
        # Unknown kinds and malformed payloads are ignored: they can only
        # come from faulty parties.

    # ------------------------------------------------------------------
    def _on_value(self, sender: int, value: Any) -> None:
        if sender != self.sender or self._echoed:
            return
        self._echoed = True
        self.broadcast("ECHO", value)

    def _on_echo(self, sender: int, value: Any) -> None:
        self._echoes[value].add(sender)
        if not self._readied and len(self._echoes[value]) >= self.n - self.t:
            self._readied = True
            self.broadcast("READY", value)
        self._check_delivery(value)

    def _on_ready(self, sender: int, value: Any) -> None:
        self._readies[value].add(sender)
        if not self._readied and len(self._readies[value]) >= self.t + 1:
            # Ready amplification: t+1 readies prove at least one honest
            # party readied this value, so it is safe to join.
            self._readied = True
            self.broadcast("READY", value)
        self._check_delivery(value)

    def _check_delivery(self, value: Any) -> None:
        if not self.finished and len(self._readies[value]) >= self.n - self.t:
            self.complete(value)


def acast_counts(instance: ACast) -> Counter:
    """Diagnostic helper: number of echo/ready supporters per value."""
    counts: Counter = Counter()
    for value, parties in instance._echoes.items():
        counts[("echo", repr(value))] = len(parties)
    for value, parties in instance._readies.items():
        counts[("ready", repr(value))] = len(parties)
    return counts
