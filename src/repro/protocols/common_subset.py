"""CommonSubset: agreeing on a set of indices satisfying a dynamic predicate.

This is Algorithm 4 (Appendix C) of the paper, used both by ``CoinFlip``
(to agree on which SVSS sharings to reconstruct) and by ``FBA`` (to agree on
whose A-Cast inputs to consider).  Each party ``P_i`` holds a *dynamic
predicate* ``Q_i``: a monotone boolean per index that can flip from 0 to 1 as
the party observes irreversible conditions (for example "I completed
``SVSS-Share`` with dealer ``j``").

Protocol sketch (one binary BA per index):

1. When ``Q_i(j)`` becomes 1 and fewer than ``k`` BAs have output 1 so far,
   join ``BA_j`` with input 1.
2. When the count of BAs that output 1 reaches ``k``, join every remaining
   ``BA_j`` with input 0.
3. When every ``BA_j`` has terminated, output ``{j : BA_j output 1}``.

The parent protocol drives the predicate by calling
:meth:`CommonSubset.set_predicate` -- this mirrors the paper's ``Q_i``
"becoming 1" and keeps the common-subset logic reusable across parents.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set

from repro.net.message import SessionId
from repro.net.process import Process
from repro.net.protocol import Protocol
from repro.protocols.aba import BinaryAgreement, CoinSource, OracleCoinSource


class CommonSubset(Protocol):
    """Algorithm 4: ``CommonSubset(Q_i, k)``.

    Start kwargs:
        k: minimum size of the output set (defaults to ``n - t``).

    Output: a set of indices ``S`` with ``|S| >= k`` on which all honest
    parties agree, each backed by some honest party's predicate.
    """

    def __init__(
        self,
        process: Process,
        session: SessionId,
        coin_source: Optional[CoinSource] = None,
    ) -> None:
        super().__init__(process, session)
        self.coin_source = coin_source or OracleCoinSource()
        self.k = self.params.quorum
        self.predicate: Set[int] = set()
        self.joined: Dict[int, int] = {}
        self.ba_outputs: Dict[int, int] = {}
        self._ones = 0
        self._flushed_zeros = False

    @classmethod
    def factory(
        cls, coin_source: Optional[CoinSource] = None
    ) -> Callable[[Process, SessionId], "CommonSubset"]:
        """Protocol factory fixing the BA coin source."""
        def build(process: Process, session: SessionId) -> "CommonSubset":
            return cls(process, session, coin_source)

        return build

    # ------------------------------------------------------------------
    def on_start(self, k: Optional[int] = None, **_: Any) -> None:
        if k is not None:
            self.k = k
        # Predicate values may have been set before start.
        for index in sorted(self.predicate):
            self._maybe_join_with_one(index)

    def set_predicate(self, index: int) -> None:
        """Record that ``Q_i(index)`` became 1 (monotone, idempotent)."""
        if index in self.predicate or not self.params.is_valid_party(index):
            return
        self.predicate.add(index)
        if self.started:
            self._maybe_join_with_one(index)

    # ------------------------------------------------------------------
    def on_message(self, sender: int, payload: tuple) -> None:
        # All communication happens inside the child BA instances; the
        # CommonSubset session itself carries no direct messages.
        return

    def on_child_complete(self, child: Protocol) -> None:
        if not isinstance(child, BinaryAgreement):
            return
        index = self._index_of(child)
        if index is None or index in self.ba_outputs:
            return
        self.ba_outputs[index] = int(child.output)
        if self.ba_outputs[index] == 1:
            self._ones += 1
            if self._ones >= self.k:
                self._flush_zeros()
        self._maybe_complete()

    # ------------------------------------------------------------------
    def _index_of(self, child: Protocol) -> Optional[int]:
        for key, instance in self.children.items():
            if instance is child and isinstance(key, tuple) and key[0] == "ba":
                return key[1]
        return None

    def _maybe_join_with_one(self, index: int) -> None:
        if index in self.joined or self._ones >= self.k:
            return
        self._join(index, 1)

    def _flush_zeros(self) -> None:
        if self._flushed_zeros:
            return
        self._flushed_zeros = True
        for index in range(self.n):
            if index not in self.joined:
                self._join(index, 0)

    def _join(self, index: int, vote: int) -> None:
        self.joined[index] = vote
        self.spawn(
            ("ba", index),
            BinaryAgreement.factory(self.coin_source),
            value=vote,
        )

    def _maybe_complete(self) -> None:
        if self.finished or len(self.ba_outputs) < self.n:
            return
        subset = frozenset(
            index for index, value in self.ba_outputs.items() if value == 1
        )
        self.complete(subset)
